// Engine-vs-oracle equivalence and engine invariants. The contract under
// test (src/engine/README.md): run_service_engine is bit-identical to
// boinc::run_collection for any shard/thread count, conserves work units
// after every drained batch, and the quorum overlay's outcome is a pure
// function of the config.
#include "engine/service_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "boinc/client.h"
#include "boinc/server.h"
#include "boinc/simulation.h"

namespace resmodel::engine {
namespace {

boinc::CollectionConfig base_collection(std::uint64_t seed) {
  boinc::CollectionConfig config;
  config.population.seed = seed;
  config.population.target_active_hosts = 250;
  config.population.sim_start = util::ModelDate::from_ymd(2006, 1, 1);
  config.population.sim_end = util::ModelDate::from_ymd(2007, 6, 1);
  config.client.mean_contact_interval_days = 3.0;
  return config;
}

EngineConfig engine_config(const boinc::CollectionConfig& collection,
                           std::uint32_t shards, int threads = 1) {
  EngineConfig config;
  config.collection = collection;
  config.shards = shards;
  config.threads = threads;
  config.batch_size = 256;  // small batch => many conservation recounts
  return config;
}

/// The fault/availability scenarios the equivalence claim is pinned on.
std::vector<boinc::CollectionConfig> scenario_configs() {
  std::vector<boinc::CollectionConfig> configs;

  configs.push_back(base_collection(31));  // plain honest population

  boinc::CollectionConfig avail = base_collection(32);
  avail.client.model_availability = true;
  configs.push_back(avail);

  boinc::CollectionConfig crash = base_collection(33);
  crash.client.model_availability = true;  // crashes need sessions
  crash.fault_mix.crash_fraction = 0.3;
  configs.push_back(crash);

  boinc::CollectionConfig straggler = base_collection(34);
  straggler.fault_mix.straggler_fraction = 0.3;
  configs.push_back(straggler);

  boinc::CollectionConfig corrupter = base_collection(35);
  corrupter.fault_mix.corrupter_fraction = 0.3;
  configs.push_back(corrupter);

  boinc::CollectionConfig mixed = base_collection(36);
  mixed.client.model_availability = true;
  mixed.fault_mix.crash_fraction = 0.2;
  mixed.fault_mix.straggler_fraction = 0.2;
  mixed.fault_mix.corrupter_fraction = 0.2;
  mixed.server.report_deadline_days = 10.0;
  configs.push_back(mixed);

  return configs;
}

std::vector<trace::HostRecord> sorted_by_id(const trace::TraceStore& store) {
  std::vector<trace::HostRecord> hosts(store.hosts().begin(),
                                       store.hosts().end());
  std::sort(hosts.begin(), hosts.end(),
            [](const trace::HostRecord& a, const trace::HostRecord& b) {
              return a.id < b.id;
            });
  return hosts;
}

void expect_same_record(const trace::HostRecord& a,
                        const trace::HostRecord& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.created_day, b.created_day);
  EXPECT_EQ(a.last_contact_day, b.last_contact_day);
  EXPECT_EQ(a.n_cores, b.n_cores);
  EXPECT_EQ(a.memory_mb, b.memory_mb);
  EXPECT_EQ(a.dhrystone_mips, b.dhrystone_mips);
  EXPECT_EQ(a.whetstone_mips, b.whetstone_mips);
  EXPECT_EQ(a.disk_avail_gb, b.disk_avail_gb);
  EXPECT_EQ(a.disk_total_gb, b.disk_total_gb);
  EXPECT_EQ(a.cpu, b.cpu);
  EXPECT_EQ(a.os, b.os);
  EXPECT_EQ(a.gpu, b.gpu);
  EXPECT_EQ(a.gpu_memory_mb, b.gpu_memory_mb);
}

void expect_matches_oracle(const EngineResult& engine,
                           const boinc::CollectionResult& oracle) {
  EXPECT_EQ(engine.hosts_created, oracle.hosts_created);
  EXPECT_EQ(engine.total_contacts, oracle.total_contacts);
  EXPECT_EQ(engine.total_units_granted, oracle.total_units_granted);
  // Exact: every credit increment is an integer multiple of the (exactly
  // representable) credit_per_unit, so the fold order cannot matter.
  EXPECT_EQ(engine.total_credit_granted, oracle.total_credit_granted);
  EXPECT_EQ(engine.total_units_lost, oracle.total_units_lost);
  EXPECT_EQ(engine.total_units_expired, oracle.total_units_expired);
  EXPECT_EQ(engine.total_invalid_result_units,
            oracle.total_invalid_result_units);

  const std::vector<trace::HostRecord> a = sorted_by_id(engine.trace);
  const std::vector<trace::HostRecord> b = sorted_by_id(oracle.trace);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_same_record(a[i], b[i]);
}

TEST(ServiceEngine, MatchesOracleAcrossFaultScenarios) {
  for (const boinc::CollectionConfig& collection : scenario_configs()) {
    SCOPED_TRACE(::testing::Message()
                 << "seed " << collection.population.seed);
    const boinc::CollectionResult oracle = boinc::run_collection(collection);
    ASSERT_GT(oracle.hosts_created, 500u);  // ~1k-client scale
    const EngineResult engine =
        run_service_engine(engine_config(collection, 3));
    expect_matches_oracle(engine, oracle);
    EXPECT_TRUE(engine.conserves_units());
    EXPECT_GT(engine.batches_drained, 1u);
  }
}

TEST(ServiceEngine, PerClientAccountsMatchSoloOracle) {
  // Client independence is the engine's core argument: a client's account
  // against a private server equals its account inside the full run.
  boinc::CollectionConfig collection = base_collection(36);
  collection.client.model_availability = true;
  collection.fault_mix.crash_fraction = 0.2;
  collection.fault_mix.straggler_fraction = 0.2;
  collection.fault_mix.corrupter_fraction = 0.2;
  collection.server.report_deadline_days = 10.0;

  EngineConfig config = engine_config(collection, 4);
  config.record_per_client = true;
  const EngineResult engine = run_service_engine(config);

  const std::vector<boinc::ArrivedClient> arrivals =
      boinc::build_arrivals(collection);
  ASSERT_EQ(engine.per_client.size(), arrivals.size());
  const double end_day =
      static_cast<double>(collection.population.sim_end.day_index());

  const std::size_t stride = std::max<std::size_t>(arrivals.size() / 23, 1);
  for (std::size_t i = 0; i < arrivals.size(); i += stride) {
    SCOPED_TRACE(::testing::Message() << "client " << i);
    const boinc::ArrivedClient& arrival = arrivals[i];
    boinc::ClientConfig cc = collection.client;
    cc.fault = arrival.fault;
    cc.straggler_slowdown = arrival.straggler_slowdown;
    boinc::VirtualClient client(arrival.spec, cc, arrival.rng);
    boinc::ProjectServer server(collection.server);
    std::uint64_t contacts = 0;
    while (client.alive() && client.next_contact_day() <= end_day) {
      const boinc::SchedulerRequest request = client.make_request();
      client.handle_reply(server.handle_request(request));
      ++contacts;
    }

    const ClientAccount& account = engine.per_client[i];
    EXPECT_EQ(account.id, arrival.spec.id);
    EXPECT_EQ(account.contacts, contacts);
    EXPECT_EQ(account.units_granted, server.total_units_granted());
    EXPECT_EQ(account.credit, server.total_credit_granted());
    EXPECT_EQ(account.units_lost, server.total_units_lost());
    EXPECT_EQ(account.units_expired, server.total_units_expired());
    EXPECT_EQ(account.units_invalid, server.total_invalid_result_units());
    // The solo server exposes no queue accessor; pin the in-flight count
    // through the conservation identity instead.
    EXPECT_EQ(account.units_in_flight,
              account.units_granted - account.units_reported -
                  account.units_invalid - account.units_lost -
                  account.units_expired);
  }
}

TEST(ServiceEngine, BitIdenticalAcrossShardAndThreadCounts) {
  boinc::CollectionConfig collection = base_collection(40);
  collection.client.model_availability = true;
  collection.fault_mix.crash_fraction = 0.15;
  collection.fault_mix.corrupter_fraction = 0.15;
  collection.server.report_deadline_days = 8.0;

  const EngineResult reference =
      run_service_engine(engine_config(collection, 1));
  for (const auto& [shards, threads] :
       std::vector<std::pair<std::uint32_t, int>>{
           {3, 1}, {8, 1}, {8, 4}, {8, 0}}) {
    SCOPED_TRACE(::testing::Message()
                 << "shards " << shards << " threads " << threads);
    const EngineResult run =
        run_service_engine(engine_config(collection, shards, threads));
    EXPECT_EQ(run.total_contacts, reference.total_contacts);
    EXPECT_EQ(run.total_units_granted, reference.total_units_granted);
    EXPECT_EQ(run.total_units_reported, reference.total_units_reported);
    EXPECT_EQ(run.total_credit_granted, reference.total_credit_granted);
    EXPECT_EQ(run.total_units_lost, reference.total_units_lost);
    EXPECT_EQ(run.total_units_expired, reference.total_units_expired);
    EXPECT_EQ(run.total_invalid_result_units,
              reference.total_invalid_result_units);
    EXPECT_EQ(run.units_in_flight, reference.units_in_flight);
    // The engine's trace is emitted in global client order regardless of
    // sharding, so it must match element-wise, not just as a set.
    ASSERT_EQ(run.trace.size(), reference.trace.size());
    for (std::size_t i = 0; i < run.trace.size(); ++i) {
      expect_same_record(run.trace.host(i), reference.trace.host(i));
    }
  }
}

TEST(ServiceEngine, QuorumOutcomeConservesAndIsShardInvariant) {
  boinc::CollectionConfig collection = base_collection(50);
  collection.client.model_availability = true;
  collection.fault_mix.crash_fraction = 0.2;
  collection.fault_mix.corrupter_fraction = 0.2;

  EngineConfig config = engine_config(collection, 1);
  config.replication.enabled = true;
  config.replication.replicas = 3;
  config.replication.quorum = 2;
  // Tighter than the 3-day contact cadence, so deadline write-offs occur.
  config.replication.deadline_days = 2.0;

  const EngineResult a = run_service_engine(config);
  config.shards = 4;
  const EngineResult b = run_service_engine(config);

  for (const EngineResult* r : {&a, &b}) {
    EXPECT_TRUE(r->conserves_units());
    EXPECT_TRUE(r->quorum.conserves_tasks());
    EXPECT_TRUE(r->quorum.conserves_replicas());
    EXPECT_GT(r->quorum.tasks_issued, 0u);
    EXPECT_GT(r->quorum.tasks_validated, 0u);
    // The replication deadline overrides the server deadline, so expiries
    // must show up in both the substrate and the overlay.
    EXPECT_GT(r->total_units_expired, 0u);
    EXPECT_GT(r->quorum.replicas_missed_deadline, 0u);
    EXPECT_GT(r->quorum.replicas_corrupt, 0u);
    EXPECT_GT(r->quorum.replicas_crashed, 0u);
  }

  EXPECT_EQ(a.quorum.tasks_issued, b.quorum.tasks_issued);
  EXPECT_EQ(a.quorum.tasks_validated, b.quorum.tasks_validated);
  EXPECT_EQ(a.quorum.tasks_invalid, b.quorum.tasks_invalid);
  EXPECT_EQ(a.quorum.tasks_missed_deadline, b.quorum.tasks_missed_deadline);
  EXPECT_EQ(a.quorum.tasks_pending, b.quorum.tasks_pending);
  EXPECT_EQ(a.quorum.replicas_issued, b.quorum.replicas_issued);
  EXPECT_EQ(a.quorum.replicas_correct, b.quorum.replicas_correct);
  EXPECT_EQ(a.quorum.replicas_corrupt, b.quorum.replicas_corrupt);
  EXPECT_EQ(a.quorum.replicas_crashed, b.quorum.replicas_crashed);
  EXPECT_EQ(a.quorum.replicas_missed_deadline,
            b.quorum.replicas_missed_deadline);
  EXPECT_EQ(a.quorum.replicas_duplicate_host,
            b.quorum.replicas_duplicate_host);
  EXPECT_EQ(a.quorum.replicas_in_flight, b.quorum.replicas_in_flight);
  EXPECT_EQ(a.total_units_granted, b.total_units_granted);
  EXPECT_EQ(a.total_units_expired, b.total_units_expired);
}

TEST(ServiceEngine, CohortModeIsDeterministicAcrossShardsAndThreads) {
  EngineConfig config;
  config.collection.client.mean_contact_interval_days = 2.0;
  config.cohort_clients = 500;
  config.cohort_horizon_days = 7.0;
  config.collection.fault_mix.straggler_fraction = 0.2;
  config.shards = 1;

  const EngineResult a = run_service_engine(config);
  EXPECT_EQ(a.hosts_created, 500u);
  EXPECT_EQ(a.trace.size(), 500u);  // everyone contacts on day 0
  EXPECT_GE(a.total_contacts, 500u);
  EXPECT_TRUE(a.conserves_units());

  config.shards = 5;
  config.threads = 3;
  const EngineResult b = run_service_engine(config);
  EXPECT_EQ(b.total_contacts, a.total_contacts);
  EXPECT_EQ(b.total_units_granted, a.total_units_granted);
  EXPECT_EQ(b.total_credit_granted, a.total_credit_granted);
  EXPECT_EQ(b.units_in_flight, a.units_in_flight);
  ASSERT_EQ(b.trace.size(), a.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    expect_same_record(b.trace.host(i), a.trace.host(i));
  }
}

TEST(ServiceEngine, ValidatesConfig) {
  EngineConfig config;
  config.cohort_clients = 10;
  config.cohort_horizon_days = 1.0;

  EngineConfig bad = config;
  bad.shards = 0;
  EXPECT_THROW(run_service_engine(bad), std::invalid_argument);

  bad = config;
  bad.batch_size = 0;
  EXPECT_THROW(run_service_engine(bad), std::invalid_argument);

  bad = config;
  bad.cohort_horizon_days = 0.0;
  EXPECT_THROW(run_service_engine(bad), std::invalid_argument);

  bad = config;
  bad.replication.enabled = true;
  bad.replication.quorum = 4;
  bad.replication.replicas = 2;
  EXPECT_THROW(run_service_engine(bad), std::invalid_argument);

  bad = config;
  bad.collection.client.mean_contact_interval_days = -1.0;
  EXPECT_THROW(run_service_engine(bad), std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::engine

// The checkpoint/resume contract (engine/checkpoint.h):
//
//  1. Bit-identity: checkpoint at day d + kill + resume produces the
//     same final counters, trace records and per-client accounts as a
//     run that was never interrupted — across shard/thread counts, with
//     and without the replication overlay, under fault-injected client
//     populations, and in both population modes.
//  2. Crash safety: a store fault injected into a checkpoint write
//     (ENOSPC, EIO, crash mid-tmp, crash at commit) kills the run with a
//     typed StoreError and never damages the previously published
//     checkpoint — which remains byte-identical and resumable.
//  3. Refusal: a corrupted checkpoint is never resumed. load_checkpoint
//     CRC-walks every block first and throws a typed StoreError naming
//     exactly which shards were lost; read_recovering still surfaces
//     every intact shard bit-identically with exact lost accounting.
#include "engine/checkpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "engine/service_engine.h"
#include "store/fault_injection.h"
#include "store/snapshot.h"
#include "util/model_date.h"

namespace resmodel::engine {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "<absent>";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A small cohort run with enough going on to exercise every serialized
/// field: availability sessions, the chosen fault mix, short deadlines.
EngineConfig cohort_config(std::uint64_t seed, int fault_mix,
                           bool replication) {
  EngineConfig config;
  config.cohort_clients = 400;
  config.cohort_horizon_days = 10.0;
  config.collection.population.seed = seed;
  config.collection.client.mean_contact_interval_days = 1.5;
  config.collection.client.model_availability = true;
  config.collection.server.report_deadline_days = 4.0;
  config.batch_size = 128;  // many conservation recounts
  config.record_per_client = true;
  switch (fault_mix) {
    case 0:
      config.collection.fault_mix.crash_fraction = 0.2;
      config.collection.fault_mix.straggler_fraction = 0.15;
      break;
    default:
      config.collection.fault_mix.corrupter_fraction = 0.25;
      config.collection.fault_mix.crash_fraction = 0.1;
      break;
  }
  if (replication) {
    config.replication.enabled = true;
    config.replication.replicas = 3;
    config.replication.quorum = 2;
    config.replication.deadline_days = 3.0;
  }
  return config;
}

void expect_same_account(const ClientAccount& a, const ClientAccount& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.contacts, b.contacts);
  EXPECT_EQ(a.units_granted, b.units_granted);
  EXPECT_EQ(a.units_reported, b.units_reported);
  EXPECT_EQ(a.units_invalid, b.units_invalid);
  EXPECT_EQ(a.units_lost, b.units_lost);
  EXPECT_EQ(a.units_expired, b.units_expired);
  EXPECT_EQ(a.units_in_flight, b.units_in_flight);
  EXPECT_EQ(a.credit, b.credit);
}

std::vector<trace::HostRecord> sorted_by_id(const trace::TraceStore& store) {
  std::vector<trace::HostRecord> hosts(store.hosts().begin(),
                                       store.hosts().end());
  std::sort(hosts.begin(), hosts.end(),
            [](const trace::HostRecord& a, const trace::HostRecord& b) {
              return a.id < b.id;
            });
  return hosts;
}

/// Every deterministic observable, compared exactly (credit included:
/// increments are integer multiples of an exactly representable unit).
void expect_identical_results(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.hosts_created, b.hosts_created);
  EXPECT_EQ(a.total_contacts, b.total_contacts);
  EXPECT_EQ(a.total_units_granted, b.total_units_granted);
  EXPECT_EQ(a.total_units_reported, b.total_units_reported);
  EXPECT_EQ(a.total_credit_granted, b.total_credit_granted);
  EXPECT_EQ(a.total_units_lost, b.total_units_lost);
  EXPECT_EQ(a.total_units_expired, b.total_units_expired);
  EXPECT_EQ(a.total_invalid_result_units, b.total_invalid_result_units);
  EXPECT_EQ(a.units_in_flight, b.units_in_flight);

  EXPECT_EQ(a.quorum.tasks_issued, b.quorum.tasks_issued);
  EXPECT_EQ(a.quorum.tasks_validated, b.quorum.tasks_validated);
  EXPECT_EQ(a.quorum.tasks_invalid, b.quorum.tasks_invalid);
  EXPECT_EQ(a.quorum.tasks_missed_deadline, b.quorum.tasks_missed_deadline);
  EXPECT_EQ(a.quorum.tasks_pending, b.quorum.tasks_pending);
  EXPECT_EQ(a.quorum.replicas_issued, b.quorum.replicas_issued);
  EXPECT_EQ(a.quorum.replicas_correct, b.quorum.replicas_correct);
  EXPECT_EQ(a.quorum.replicas_corrupt, b.quorum.replicas_corrupt);
  EXPECT_EQ(a.quorum.replicas_crashed, b.quorum.replicas_crashed);
  EXPECT_EQ(a.quorum.replicas_missed_deadline,
            b.quorum.replicas_missed_deadline);
  EXPECT_EQ(a.quorum.replicas_duplicate_host,
            b.quorum.replicas_duplicate_host);
  EXPECT_EQ(a.quorum.replicas_in_flight, b.quorum.replicas_in_flight);

  const std::vector<trace::HostRecord> ta = sorted_by_id(a.trace);
  const std::vector<trace::HostRecord> tb = sorted_by_id(b.trace);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    const trace::HostRecord& x = ta[i];
    const trace::HostRecord& y = tb[i];
    ASSERT_EQ(x.id, y.id);
    EXPECT_EQ(x.created_day, y.created_day);
    EXPECT_EQ(x.last_contact_day, y.last_contact_day);
    EXPECT_EQ(x.n_cores, y.n_cores);
    EXPECT_EQ(x.memory_mb, y.memory_mb);
    EXPECT_EQ(x.dhrystone_mips, y.dhrystone_mips);
    EXPECT_EQ(x.whetstone_mips, y.whetstone_mips);
    EXPECT_EQ(x.disk_avail_gb, y.disk_avail_gb);
    EXPECT_EQ(x.disk_total_gb, y.disk_total_gb);
    EXPECT_EQ(x.cpu, y.cpu);
    EXPECT_EQ(x.os, y.os);
    EXPECT_EQ(x.gpu, y.gpu);
    EXPECT_EQ(x.gpu_memory_mb, y.gpu_memory_mb);
  }

  ASSERT_EQ(a.per_client.size(), b.per_client.size());
  for (std::size_t i = 0; i < a.per_client.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "client " << i);
    expect_same_account(a.per_client[i], b.per_client[i]);
  }
}

/// Runs config uninterrupted, then checkpoint+kill at `stop_day` and
/// resume, and requires the two outcomes bit-identical.
void expect_resume_equals_uninterrupted(EngineConfig config,
                                        std::int32_t stop_day,
                                        const std::string& path) {
  const EngineResult uninterrupted = run_service_engine(config);
  EXPECT_TRUE(uninterrupted.conserves_units());
  EXPECT_FALSE(uninterrupted.halted);

  EngineConfig killed = config;
  killed.checkpoint_path = path;
  killed.checkpoint_every_days = 3;
  killed.stop_after_day = stop_day;
  const EngineResult halted = run_service_engine(killed);
  EXPECT_TRUE(halted.halted);
  EXPECT_GE(halted.checkpoints_written, 1u);

  EngineConfig resumed_config;  // population shape comes from the file
  resumed_config.resume_path = path;
  resumed_config.threads = config.threads;
  resumed_config.record_per_client = config.record_per_client;
  const EngineResult resumed = run_service_engine(resumed_config);
  EXPECT_FALSE(resumed.halted);
  EXPECT_EQ(resumed.resumed_from_day, stop_day + 1);
  expect_identical_results(resumed, uninterrupted);
}

TEST(EngineCheckpoint, ResumeBitIdenticalAcrossShardThreadFaultGrid) {
  int scenario = 0;
  for (const std::uint32_t shards : {1u, 8u}) {
    for (const int threads : {1, 0}) {  // 0 = hardware concurrency
      for (const bool replication : {false, true}) {
        for (const int fault_mix : {0, 1}) {
          SCOPED_TRACE(::testing::Message()
                       << "shards " << shards << " threads " << threads
                       << " replication " << replication << " fault mix "
                       << fault_mix);
          EngineConfig config =
              cohort_config(1000 + fault_mix, fault_mix, replication);
          config.shards = shards;
          config.threads = threads;
          expect_resume_equals_uninterrupted(
              config, /*stop_day=*/4,
              temp_path("grid_" + std::to_string(scenario++) + ".snap"));
        }
      }
    }
  }
}

TEST(EngineCheckpoint, ResumeBitIdenticalInArrivalMode) {
  // Arrival mode: the full §IV arrival process, absolute day indices.
  EngineConfig config;
  config.collection.population.seed = 77;
  config.collection.population.target_active_hosts = 150;
  config.collection.population.sim_start = util::ModelDate::from_ymd(2006, 1, 1);
  config.collection.population.sim_end = util::ModelDate::from_ymd(2006, 7, 1);
  config.collection.client.mean_contact_interval_days = 3.0;
  config.collection.client.model_availability = true;
  config.collection.fault_mix.crash_fraction = 0.2;
  config.shards = 4;
  config.record_per_client = true;
  const std::int32_t mid = static_cast<std::int32_t>(
      config.collection.population.sim_start.day_index() + 90);
  expect_resume_equals_uninterrupted(config, mid, temp_path("arrival.snap"));
}

TEST(EngineCheckpoint, ResumeOfResumeStillBitIdentical) {
  // Two kills in one run: day 2 and day 6, each resumed from its own
  // published epoch.
  EngineConfig config = cohort_config(55, 0, true);
  config.shards = 5;
  const std::string path = temp_path("twice.snap");
  const EngineResult uninterrupted = run_service_engine(config);

  EngineConfig first = config;
  first.checkpoint_path = path;
  first.stop_after_day = 2;
  ASSERT_TRUE(run_service_engine(first).halted);

  EngineConfig second;
  second.resume_path = path;
  second.checkpoint_path = path;
  second.stop_after_day = 6;
  ASSERT_TRUE(run_service_engine(second).halted);

  EngineConfig last;
  last.resume_path = path;
  last.record_per_client = true;
  const EngineResult resumed = run_service_engine(last);
  EXPECT_EQ(resumed.resumed_from_day, 7);
  expect_identical_results(resumed, uninterrupted);
}

TEST(EngineCheckpoint, ResumedRunPublishesTheSameEpochsAsUninterrupted) {
  // The cadence counts from the run's first day, so the final epoch an
  // interrupted+resumed run publishes is byte-identical to the one the
  // uninterrupted run publishes (everything in the store layer is
  // deterministic — no timestamps).
  EngineConfig config = cohort_config(91, 1, false);
  config.shards = 3;

  EngineConfig full = config;
  full.checkpoint_path = temp_path("cadence_full.snap");
  full.checkpoint_every_days = 3;
  const EngineResult a = run_service_engine(full);
  EXPECT_FALSE(a.halted);
  EXPECT_EQ(a.checkpoints_written, 3u);  // days 2, 5, 8 of 0..9

  EngineConfig killed = config;
  killed.checkpoint_path = temp_path("cadence_split.snap");
  killed.checkpoint_every_days = 3;
  killed.stop_after_day = 4;
  ASSERT_TRUE(run_service_engine(killed).halted);

  EngineConfig resumed = config;
  resumed.resume_path = killed.checkpoint_path;
  resumed.checkpoint_path = killed.checkpoint_path;
  resumed.checkpoint_every_days = 3;
  const EngineResult b = run_service_engine(resumed);
  EXPECT_FALSE(b.halted);

  EXPECT_EQ(read_file(full.checkpoint_path),
            read_file(killed.checkpoint_path));
}

TEST(EngineCheckpoint, InjectedWriterFaultsNeverDamageThePublishedEpoch) {
  struct PlanCase {
    const char* name;
    store::FaultPlan plan;
  };
  const std::uint64_t kNever = ~std::uint64_t{0};
  const std::vector<PlanCase> cases = {
      {"enospc", {store::FaultPlan::Kind::kNoSpace, 4096}},
      {"eio", {store::FaultPlan::Kind::kIoError, 4096}},
      {"crash-byte", {store::FaultPlan::Kind::kCrash, 4096}},
      {"crash-commit", {store::FaultPlan::Kind::kCrash, kNever}},
  };

  EngineConfig config = cohort_config(33, 0, true);
  config.shards = 4;
  const EngineResult uninterrupted = run_service_engine(config);

  // Reference epoch 1 (published at day 1 under every=2), for the
  // byte-identity check after the faulted write.
  EngineConfig ref = config;
  ref.checkpoint_path = temp_path("fault_ref.snap");
  ref.checkpoint_every_days = 2;
  ref.stop_after_day = 1;
  ASSERT_TRUE(run_service_engine(ref).halted);
  const std::string epoch1 = read_file(ref.checkpoint_path);
  ASSERT_NE(epoch1, "<absent>");

  for (const PlanCase& c : cases) {
    SCOPED_TRACE(c.name);
    EngineConfig faulted = config;
    faulted.checkpoint_path = temp_path(std::string("fault_") + c.name +
                                        ".snap");
    faulted.checkpoint_every_days = 2;
    faulted.checkpoint_fault = c.plan;
    faulted.checkpoint_fault_epoch = 2;  // epoch 1 publishes, 2 dies
    EXPECT_THROW(run_service_engine(faulted), store::StoreError);

    // The fault killed the run mid-write; epoch 1 must be untouched.
    EXPECT_EQ(read_file(faulted.checkpoint_path), epoch1);

    // And it must still be a fully resumable checkpoint.
    EngineConfig resumed;
    resumed.resume_path = faulted.checkpoint_path;
    resumed.record_per_client = true;
    const EngineResult after = run_service_engine(resumed);
    EXPECT_EQ(after.resumed_from_day, 2);
    expect_identical_results(after, uninterrupted);
  }
}

// --- Corruption refusal ---------------------------------------------------

/// Publishes a replication-overlay checkpoint with `shards` ClientShards
/// (snapshot layout: header + shards + quorum state) and returns its
/// path.
std::string publish_checkpoint(std::uint32_t shards, const char* name) {
  EngineConfig config = cohort_config(21, 1, true);
  config.shards = shards;
  config.checkpoint_path = temp_path(name);
  config.checkpoint_every_days = 4;
  config.stop_after_day = 5;
  const EngineResult halted = run_service_engine(config);
  EXPECT_TRUE(halted.halted);
  return config.checkpoint_path;
}

TEST(EngineCheckpoint, BitFlipRefusedWithItemizedLostShards) {
  const std::string path = publish_checkpoint(8, "flip.snap");

  // Pristine per-snapshot-shard blobs: the yardstick for "intact shards
  // load bit-identically" after the damage.
  store::SnapshotReader pristine(path);
  const std::uint64_t n_snap_shards = pristine.shard_count();
  ASSERT_EQ(n_snap_shards, 1u + 8u + 1u);  // header + shards + quorum
  std::vector<std::vector<std::byte>> blobs;
  for (std::uint64_t s = 0; s < n_snap_shards; ++s) {
    blobs.push_back(std::move(pristine.read_shard(s).columns[0].data));
  }

  store::CorruptionPlan plan;
  plan.kind = store::CorruptionPlan::Kind::kBitFlip;
  plan.at = read_file(path).size() * 4;  // a bit mid-file
  store::corrupt_file(path, plan);

  // Strict resume refuses with a typed, itemized error.
  try {
    load_checkpoint(path);
    FAIL() << "resume from a bit-flipped checkpoint must throw";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.errc(), store::StoreErrc::kBlockCorrupt);
    EXPECT_NE(std::string(e.what()).find("refusing resume"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("lost"), std::string::npos);
  }

  // Recovering read: exact accounting, intact shards bit-identical,
  // damaged ones zero-filled.
  store::SnapshotReader damaged(path);
  store::ReadReport report;
  const store::Snapshot recovered = damaged.read_recovering(report);
  EXPECT_TRUE(report.footer_intact);
  EXPECT_FALSE(report.complete);
  ASSERT_FALSE(report.lost.empty());
  EXPECT_EQ(report.blocks_loaded + report.lost.size(),
            report.blocks_expected);
  std::uint64_t lost_rows = 0;
  for (const store::LostBlock& lost : report.lost) lost_rows += lost.rows;
  EXPECT_EQ(lost_rows, report.rows_lost);

  // The single u8 column concatenates the shard blobs; walk it shard by
  // shard against the pristine copy.
  ASSERT_EQ(recovered.columns.size(), 1u);
  const std::vector<std::byte>& col = recovered.columns[0].data;
  std::uint64_t offset = 0;
  for (std::uint64_t s = 0; s < n_snap_shards; ++s) {
    SCOPED_TRACE(::testing::Message() << "snapshot shard " << s);
    const bool is_lost = std::any_of(
        report.lost.begin(), report.lost.end(),
        [s](const store::LostBlock& b) { return b.shard == s; });
    ASSERT_LE(offset + blobs[s].size(), col.size());
    const std::span<const std::byte> slice(col.data() + offset,
                                           blobs[s].size());
    if (is_lost) {
      EXPECT_TRUE(std::all_of(slice.begin(), slice.end(), [](std::byte b) {
        return b == std::byte{0};
      })) << "damaged shard must be zero-filled, never silently wrong";
    } else {
      EXPECT_TRUE(std::equal(slice.begin(), slice.end(), blobs[s].begin(),
                             blobs[s].end()))
          << "intact shard must load bit-identically";
    }
    offset += blobs[s].size();
  }
}

TEST(EngineCheckpoint, TruncationRefusedAsFooterDamage) {
  const std::string path = publish_checkpoint(4, "trunc.snap");
  store::CorruptionPlan plan;
  plan.kind = store::CorruptionPlan::Kind::kTruncate;
  plan.at = read_file(path).size() / 2;
  store::corrupt_file(path, plan);

  try {
    load_checkpoint(path);
    FAIL() << "resume from a truncated checkpoint must throw";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.errc(), store::StoreErrc::kFooterCorrupt);
    EXPECT_NE(std::string(e.what()).find("refusing resume"),
              std::string::npos);
  }
}

TEST(EngineCheckpoint, ZeroedTailItemizesEveryLostShardByName) {
  const std::string path = publish_checkpoint(4, "zero.snap");
  const std::uint64_t size = read_file(path).size();
  store::CorruptionPlan plan;
  plan.kind = store::CorruptionPlan::Kind::kZeroTail;
  plan.at = size / 2;  // keeps the footer? no — zeroes it too
  store::corrupt_file(path, plan);

  // Zeroing the tail takes the footer with it; either refusal flavour
  // must name the damage and refuse.
  try {
    load_checkpoint(path);
    FAIL() << "resume from a zero-tailed checkpoint must throw";
  } catch (const store::StoreError& e) {
    EXPECT_TRUE(e.errc() == store::StoreErrc::kFooterCorrupt ||
                e.errc() == store::StoreErrc::kBlockCorrupt);
    EXPECT_NE(std::string(e.what()).find("refusing resume"),
              std::string::npos);
  }
}

TEST(EngineCheckpoint, WrongSnapshotKindRefused) {
  // A perfectly healthy snapshot of the wrong kind is not a checkpoint.
  const std::string path = temp_path("notengine.snap");
  store::SnapshotWriter writer(path, "population.v1",
                               {{"x", store::DType::kU8}});
  const std::vector<std::byte> bytes(16, std::byte{7});
  const std::array<std::span<const std::byte>, 1> cols{
      std::span<const std::byte>(bytes)};
  writer.append_shard(cols, bytes.size());
  writer.finish({});

  try {
    load_checkpoint(path);
    FAIL() << "wrong-kind snapshot must be refused";
  } catch (const store::StoreError& e) {
    EXPECT_EQ(e.errc(), store::StoreErrc::kSchemaMismatch);
    EXPECT_NE(std::string(e.what()).find("not an engine checkpoint"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace resmodel::engine

#include "engine/event_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace resmodel::engine {
namespace {

std::vector<Event> random_events(std::size_t n, util::Rng& rng,
                                 int distinct_days) {
  // Days drawn from a small set so ties are common and the client
  // tie-break actually decides the order.
  std::vector<Event> events;
  events.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double day =
        static_cast<double>(rng.uniform_index(distinct_days));
    events.push_back({day, i});
  }
  // Shuffle the client indices into the days so insertion order and
  // tie-break order disagree.
  std::shuffle(events.begin(), events.end(), rng);
  return events;
}

std::vector<Event> drain_all(EventHeap& heap) {
  std::vector<Event> popped;
  popped.reserve(heap.size());
  while (!heap.empty()) popped.push_back(heap.pop_min());
  return popped;
}

TEST(EventHeap, PopOrderMatchesSortedReference) {
  util::Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.uniform_index(400);
    std::vector<Event> events = random_events(n, rng, 7);

    EventHeap heap;
    for (const Event& e : events) heap.push(e);
    const std::vector<Event> popped = drain_all(heap);

    std::sort(events.begin(), events.end(), fires_before);
    ASSERT_EQ(popped.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ(popped[i].day, events[i].day);
      EXPECT_EQ(popped[i].client, events[i].client);
    }
  }
}

TEST(EventHeap, PopSequenceIsStrictlyMonotone) {
  util::Rng rng(7);
  EventHeap heap;
  for (const Event& e : random_events(1000, rng, 5)) heap.push(e);
  const std::vector<Event> popped = drain_all(heap);
  for (std::size_t i = 1; i < popped.size(); ++i) {
    // Strict (day, client) increase: distinct clients make equality
    // impossible, so fires_before is a total order over the popped run.
    EXPECT_TRUE(fires_before(popped[i - 1], popped[i]));
  }
}

TEST(EventHeap, TiesBreakOnClientIndex) {
  EventHeap heap;
  // Same day, clients pushed in descending order.
  for (std::uint32_t c = 10; c-- > 0;) heap.push({3.0, c});
  heap.push({1.0, 42});
  heap.push({5.0, 0});
  EXPECT_EQ(heap.pop_min().client, 42u);
  for (std::uint32_t c = 0; c < 10; ++c) {
    const Event e = heap.pop_min();
    EXPECT_EQ(e.day, 3.0);
    EXPECT_EQ(e.client, c);
  }
  EXPECT_EQ(heap.pop_min().day, 5.0);
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, BuildMatchesIncrementalPush) {
  util::Rng rng(99);
  const std::vector<Event> events = random_events(777, rng, 11);

  EventHeap pushed;
  for (const Event& e : events) pushed.push(e);
  EventHeap built;
  built.build(events);

  ASSERT_EQ(built.size(), pushed.size());
  while (!pushed.empty()) {
    const Event a = pushed.pop_min();
    const Event b = built.pop_min();
    EXPECT_EQ(a.day, b.day);
    EXPECT_EQ(a.client, b.client);
  }
}

TEST(EventHeap, ReplaceMinEqualsPopThenPush) {
  util::Rng rng(5);
  EventHeap fused;
  EventHeap reference;
  for (const Event& e : random_events(64, rng, 9)) {
    fused.push(e);
    reference.push(e);
  }
  // Drive both heaps through the engine's drain step: pop the minimum,
  // reschedule the client at a later day.
  for (int step = 0; step < 500; ++step) {
    const Event min = fused.min();
    const Event next{min.day + 0.25 + rng.uniform(), min.client};
    fused.replace_min(next);
    reference.pop_min();
    reference.push(next);
    ASSERT_EQ(fused.size(), reference.size());
    EXPECT_EQ(fused.min().day, reference.min().day);
    EXPECT_EQ(fused.min().client, reference.min().client);
  }
}

TEST(EventHeap, InterleavedPushPopAgainstReference) {
  util::Rng rng(123);
  EventHeap heap;
  std::vector<Event> reference;
  std::uint32_t next_client = 0;
  for (int step = 0; step < 3000; ++step) {
    const bool push = reference.empty() || rng.uniform() < 0.55;
    if (push) {
      const Event e{static_cast<double>(rng.uniform_index(13)),
                    next_client++};
      heap.push(e);
      reference.push_back(e);
    } else {
      const Event popped = heap.pop_min();
      const auto it =
          std::min_element(reference.begin(), reference.end(), fires_before);
      EXPECT_EQ(popped.day, it->day);
      EXPECT_EQ(popped.client, it->client);
      reference.erase(it);
    }
    ASSERT_EQ(heap.size(), reference.size());
  }
}

}  // namespace
}  // namespace resmodel::engine

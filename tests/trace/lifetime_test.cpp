#include "trace/lifetime.h"

#include <gtest/gtest.h>

namespace resmodel::trace {
namespace {

HostRecord host(std::uint64_t id, int created, int last) {
  HostRecord h;
  h.id = id;
  h.created_day = created;
  h.last_contact_day = last;
  h.n_cores = 1;
  h.memory_mb = 1024;
  h.whetstone_mips = 1000;
  h.dhrystone_mips = 2000;
  h.disk_avail_gb = 10;
  return h;
}

TEST(HostLifetimes, ComputesSpans) {
  TraceStore store;
  store.add(host(1, 0, 100));
  store.add(host(2, 10, 15));
  const auto lt = host_lifetimes(store, util::ModelDate::from_day_index(1000));
  ASSERT_EQ(lt.size(), 2u);
  EXPECT_DOUBLE_EQ(lt[0], 100.0);
  EXPECT_DOUBLE_EQ(lt[1], 5.0);
}

TEST(HostLifetimes, CensorsLateCreations) {
  // The paper excludes hosts that connected after July 1, 2010.
  TraceStore store;
  store.add(host(1, 0, 100));
  store.add(host(2, 900, 950));
  const auto lt = host_lifetimes(store, util::ModelDate::from_day_index(500));
  ASSERT_EQ(lt.size(), 1u);
  EXPECT_DOUBLE_EQ(lt[0], 100.0);
}

TEST(CreationVsLifetime, BinsByCreationDate) {
  TraceStore store;
  store.add(host(1, 0, 100));    // bin 0, lifetime 100
  store.add(host(2, 5, 55));     // bin 0, lifetime 50
  store.add(host(3, 30, 40));    // bin 1, lifetime 10
  const auto bins = creation_date_vs_lifetime(
      store, util::ModelDate::from_day_index(0),
      util::ModelDate::from_day_index(60), 30,
      util::ModelDate::from_day_index(1000));
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].host_count, 2u);
  EXPECT_DOUBLE_EQ(bins[0].mean_lifetime_days, 75.0);
  EXPECT_EQ(bins[1].host_count, 1u);
  EXPECT_DOUBLE_EQ(bins[1].mean_lifetime_days, 10.0);
}

TEST(CreationVsLifetime, ExcludesOutsideRangeAndCutoff) {
  TraceStore store;
  store.add(host(1, -10, 5));   // before range
  store.add(host(2, 70, 80));   // after range
  store.add(host(3, 10, 20));   // in range but created after cutoff
  const auto bins = creation_date_vs_lifetime(
      store, util::ModelDate::from_day_index(0),
      util::ModelDate::from_day_index(60), 30,
      util::ModelDate::from_day_index(5));
  EXPECT_EQ(bins[0].host_count, 0u);
  EXPECT_EQ(bins[1].host_count, 0u);
}

TEST(CreationVsLifetime, EmptyBinHasZeroMean) {
  TraceStore store;
  const auto bins = creation_date_vs_lifetime(
      store, util::ModelDate::from_day_index(0),
      util::ModelDate::from_day_index(30), 30,
      util::ModelDate::from_day_index(100));
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[0].mean_lifetime_days, 0.0);
}

}  // namespace
}  // namespace resmodel::trace

#include "trace/host_record.h"

#include <gtest/gtest.h>

namespace resmodel::trace {
namespace {

HostRecord plausible_host() {
  HostRecord h;
  h.id = 1;
  h.created_day = 100;
  h.last_contact_day = 200;
  h.n_cores = 2;
  h.memory_mb = 2048.0;
  h.dhrystone_mips = 4000.0;
  h.whetstone_mips = 1800.0;
  h.disk_avail_gb = 50.0;
  h.disk_total_gb = 120.0;
  return h;
}

TEST(HostRecord, ActiveWindowIsInclusive) {
  const HostRecord h = plausible_host();
  EXPECT_TRUE(h.active_at(100));
  EXPECT_TRUE(h.active_at(150));
  EXPECT_TRUE(h.active_at(200));
  EXPECT_FALSE(h.active_at(99));
  EXPECT_FALSE(h.active_at(201));
}

TEST(HostRecord, LifetimeIsContactSpan) {
  EXPECT_EQ(plausible_host().lifetime_days(), 100);
}

TEST(HostRecord, MemoryPerCore) {
  const HostRecord h = plausible_host();
  EXPECT_DOUBLE_EQ(h.memory_per_core_mb(), 1024.0);
}

TEST(HostRecord, MemoryPerCoreZeroCoresSafe) {
  HostRecord h = plausible_host();
  h.n_cores = 0;
  EXPECT_DOUBLE_EQ(h.memory_per_core_mb(), 0.0);
}

TEST(IsPlausible, AcceptsTypicalHost) {
  EXPECT_TRUE(is_plausible(plausible_host()));
}

// The §V-B discard thresholds, one rule at a time.
TEST(IsPlausible, RejectsTooManyCores) {
  HostRecord h = plausible_host();
  h.n_cores = 129;
  EXPECT_FALSE(is_plausible(h));
  h.n_cores = 128;
  EXPECT_TRUE(is_plausible(h));
}

TEST(IsPlausible, RejectsExcessiveWhetstone) {
  HostRecord h = plausible_host();
  h.whetstone_mips = 1.1e5;
  EXPECT_FALSE(is_plausible(h));
}

TEST(IsPlausible, RejectsExcessiveDhrystone) {
  HostRecord h = plausible_host();
  h.dhrystone_mips = 1.1e5;
  EXPECT_FALSE(is_plausible(h));
}

TEST(IsPlausible, RejectsExcessiveMemory) {
  HostRecord h = plausible_host();
  h.memory_mb = 101.0 * 1024.0;  // > 100 GB
  EXPECT_FALSE(is_plausible(h));
}

TEST(IsPlausible, RejectsExcessiveDisk) {
  HostRecord h = plausible_host();
  h.disk_avail_gb = 1.1e4;
  EXPECT_FALSE(is_plausible(h));
}

TEST(IsPlausible, RejectsNonPositiveResources) {
  for (auto mutate : {+[](HostRecord& h) { h.n_cores = 0; },
                      +[](HostRecord& h) { h.memory_mb = 0.0; },
                      +[](HostRecord& h) { h.whetstone_mips = -1.0; },
                      +[](HostRecord& h) { h.dhrystone_mips = 0.0; },
                      +[](HostRecord& h) { h.disk_avail_gb = 0.0; }}) {
    HostRecord h = plausible_host();
    mutate(h);
    EXPECT_FALSE(is_plausible(h));
  }
}

TEST(IsPlausible, RejectsReversedContactOrder) {
  HostRecord h = plausible_host();
  h.last_contact_day = h.created_day - 1;
  EXPECT_FALSE(is_plausible(h));
}

TEST(EnumNames, AllCpuFamiliesNamed) {
  for (int i = 0; i < kCpuFamilyCount; ++i) {
    EXPECT_FALSE(to_string(static_cast<CpuFamily>(i)).empty());
  }
  EXPECT_EQ(to_string(CpuFamily::kPentium4), "Pentium 4");
  EXPECT_EQ(to_string(CpuFamily::kIntelCore2), "Intel Core 2");
}

TEST(EnumNames, AllOsFamiliesNamed) {
  for (int i = 0; i < kOsFamilyCount; ++i) {
    EXPECT_FALSE(to_string(static_cast<OsFamily>(i)).empty());
  }
  EXPECT_EQ(to_string(OsFamily::kWindowsXp), "Windows XP");
}

TEST(EnumNames, AllGpuTypesNamed) {
  for (int i = 0; i < kGpuTypeCount; ++i) {
    EXPECT_FALSE(to_string(static_cast<GpuType>(i)).empty());
  }
  EXPECT_EQ(to_string(GpuType::kGeForce), "GeForce");
}

}  // namespace
}  // namespace resmodel::trace

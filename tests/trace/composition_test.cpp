#include "trace/composition.h"

#include <gtest/gtest.h>

namespace resmodel::trace {
namespace {

HostRecord host(std::uint64_t id, int created, int last, CpuFamily cpu,
                OsFamily os, GpuType gpu = GpuType::kNone) {
  HostRecord h;
  h.id = id;
  h.created_day = created;
  h.last_contact_day = last;
  h.n_cores = 1;
  h.memory_mb = 1024;
  h.whetstone_mips = 1000;
  h.dhrystone_mips = 2000;
  h.disk_avail_gb = 10;
  h.cpu = cpu;
  h.os = os;
  h.gpu = gpu;
  return h;
}

std::vector<util::ModelDate> two_dates() {
  return {util::ModelDate::from_day_index(5),
          util::ModelDate::from_day_index(50)};
}

TEST(CpuComposition, SharesSumToOnePerDate) {
  TraceStore store;
  store.add(host(1, 0, 10, CpuFamily::kPentium4, OsFamily::kWindowsXp));
  store.add(host(2, 0, 100, CpuFamily::kIntelCore2, OsFamily::kWindowsXp));
  store.add(host(3, 40, 100, CpuFamily::kIntelCore2, OsFamily::kLinux));
  const CompositionTable table = cpu_composition(store, two_dates());
  ASSERT_EQ(table.shares.size(), static_cast<std::size_t>(kCpuFamilyCount));
  for (std::size_t c = 0; c < table.dates.size(); ++c) {
    double total = 0.0;
    for (const auto& row : table.shares) total += row[c];
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(CpuComposition, TracksTurnover) {
  TraceStore store;
  store.add(host(1, 0, 10, CpuFamily::kPentium4, OsFamily::kWindowsXp));
  store.add(host(2, 0, 100, CpuFamily::kIntelCore2, OsFamily::kWindowsXp));
  const CompositionTable table = cpu_composition(store, two_dates());
  const auto p4 = static_cast<std::size_t>(CpuFamily::kPentium4);
  const auto core2 = static_cast<std::size_t>(CpuFamily::kIntelCore2);
  EXPECT_DOUBLE_EQ(table.shares[p4][0], 0.5);
  EXPECT_DOUBLE_EQ(table.shares[p4][1], 0.0);  // P4 host gone by day 50
  EXPECT_DOUBLE_EQ(table.shares[core2][1], 1.0);
}

TEST(OsComposition, CategoriesMatchEnum) {
  TraceStore store;
  store.add(host(1, 0, 100, CpuFamily::kOther, OsFamily::kMacOsX));
  const CompositionTable table = os_composition(store, two_dates());
  ASSERT_EQ(table.categories.size(), static_cast<std::size_t>(kOsFamilyCount));
  EXPECT_EQ(table.categories[static_cast<std::size_t>(OsFamily::kMacOsX)],
            "Mac OS X");
  EXPECT_DOUBLE_EQ(
      table.shares[static_cast<std::size_t>(OsFamily::kMacOsX)][0], 1.0);
}

TEST(Composition, EmptyDateGivesZeroShares) {
  TraceStore store;
  store.add(host(1, 0, 10, CpuFamily::kOther, OsFamily::kOther));
  const CompositionTable table =
      cpu_composition(store, {util::ModelDate::from_day_index(500)});
  for (const auto& row : table.shares) {
    EXPECT_DOUBLE_EQ(row[0], 0.0);
  }
}

TEST(GpuComposition, FractionAndTypeShares) {
  TraceStore store;
  store.add(host(1, 0, 100, CpuFamily::kOther, OsFamily::kOther,
                 GpuType::kGeForce));
  store.add(host(2, 0, 100, CpuFamily::kOther, OsFamily::kOther,
                 GpuType::kRadeon));
  store.add(host(3, 0, 100, CpuFamily::kOther, OsFamily::kOther));
  store.add(host(4, 0, 100, CpuFamily::kOther, OsFamily::kOther));
  const GpuComposition gpu =
      gpu_composition(store, {util::ModelDate::from_day_index(50)});
  EXPECT_DOUBLE_EQ(gpu.gpu_host_fraction[0], 0.5);
  // Type shares are among GPU hosts only.
  EXPECT_DOUBLE_EQ(gpu.types.shares[0][0], 0.5);  // GeForce
  EXPECT_DOUBLE_EQ(gpu.types.shares[1][0], 0.5);  // Radeon
  EXPECT_DOUBLE_EQ(gpu.types.shares[2][0], 0.0);  // Quadro
}

TEST(GpuComposition, NoGpuHostsGivesZeroFraction) {
  TraceStore store;
  store.add(host(1, 0, 100, CpuFamily::kOther, OsFamily::kOther));
  const GpuComposition gpu =
      gpu_composition(store, {util::ModelDate::from_day_index(50)});
  EXPECT_DOUBLE_EQ(gpu.gpu_host_fraction[0], 0.0);
  EXPECT_DOUBLE_EQ(gpu.types.shares[0][0], 0.0);
}

}  // namespace
}  // namespace resmodel::trace

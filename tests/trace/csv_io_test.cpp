#include "trace/csv_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>

namespace resmodel::trace {
namespace {

HostRecord sample_host() {
  HostRecord h;
  h.id = 42;
  h.created_day = -100;
  h.last_contact_day = 365;
  h.n_cores = 4;
  h.memory_mb = 4096.5;
  h.dhrystone_mips = 4120.25;
  h.whetstone_mips = 1861.125;
  h.disk_avail_gb = 98.0625;
  h.disk_total_gb = 250.5;
  h.cpu = CpuFamily::kIntelCore2;
  h.os = OsFamily::kWindowsVista;
  h.gpu = GpuType::kRadeon;
  h.gpu_memory_mb = 512.0;
  return h;
}

TEST(TraceCsv, RoundTripsExactly) {
  TraceStore store;
  store.add(sample_host());
  HostRecord other = sample_host();
  other.id = 43;
  other.gpu = GpuType::kNone;
  other.gpu_memory_mb = 0.0;
  store.add(other);

  std::stringstream buffer;
  write_csv(store, buffer);
  const TraceStore loaded = read_csv(buffer);

  ASSERT_EQ(loaded.size(), 2u);
  const HostRecord& h = loaded.host(0);
  EXPECT_EQ(h.id, 42u);
  EXPECT_EQ(h.created_day, -100);
  EXPECT_EQ(h.last_contact_day, 365);
  EXPECT_EQ(h.n_cores, 4);
  EXPECT_DOUBLE_EQ(h.memory_mb, 4096.5);
  EXPECT_DOUBLE_EQ(h.dhrystone_mips, 4120.25);
  EXPECT_DOUBLE_EQ(h.whetstone_mips, 1861.125);
  EXPECT_DOUBLE_EQ(h.disk_avail_gb, 98.0625);
  EXPECT_DOUBLE_EQ(h.disk_total_gb, 250.5);
  EXPECT_EQ(h.cpu, CpuFamily::kIntelCore2);
  EXPECT_EQ(h.os, OsFamily::kWindowsVista);
  EXPECT_EQ(h.gpu, GpuType::kRadeon);
  EXPECT_EQ(loaded.host(1).gpu, GpuType::kNone);
}

TEST(TraceCsv, EmptyStoreRoundTrips) {
  TraceStore store;
  std::stringstream buffer;
  write_csv(store, buffer);
  EXPECT_EQ(read_csv(buffer).size(), 0u);
}

TEST(TraceCsv, RejectsMissingHeader) {
  std::istringstream in("1,2,3\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(TraceCsv, RejectsWrongFieldCount) {
  TraceStore store;
  store.add(sample_host());
  std::stringstream buffer;
  write_csv(store, buffer);
  std::string text = buffer.str();
  text += "1,2,3\n";  // short row
  std::istringstream in(text);
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(TraceCsv, RejectsBadNumber) {
  TraceStore store;
  store.add(sample_host());
  std::stringstream buffer;
  write_csv(store, buffer);
  std::string text = buffer.str();
  // Corrupt the memory field of the data row.
  const auto pos = text.find("4096.5");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "notnum");
  std::istringstream in(text);
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(TraceCsv, RejectsOutOfRangeEnum) {
  TraceStore store;
  store.add(sample_host());
  std::stringstream buffer;
  write_csv(store, buffer);
  std::string text = buffer.str();
  // cpu column holds "8" (kIntelCore2); replace the exact cell.
  const auto pos = text.rfind(",8,");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, ",99,");
  std::istringstream in(text);
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(TraceCsv, FileRoundTrip) {
  TraceStore store;
  store.add(sample_host());
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  write_csv_file(store, path);
  const TraceStore loaded = read_csv_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.host(0).id, 42u);
}

TEST(TraceCsv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"),
               std::runtime_error);
}

// --- typed CsvError: the path and 1-based line must pinpoint the damage ---

/// Serialized two-host store with `mutate` applied to the raw text.
std::string corrupted_fixture(
    const std::function<void(std::string&)>& mutate) {
  TraceStore store;
  store.add(sample_host());
  HostRecord other = sample_host();
  other.id = 43;
  store.add(other);
  std::stringstream buffer;
  write_csv(store, buffer);
  std::string text = buffer.str();
  mutate(text);
  return text;
}

TEST(TraceCsvError, WrongHeaderReportsLineOne) {
  std::istringstream in("id,oops\n");
  try {
    read_csv(in, "fixture.csv");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.path(), "fixture.csv");
    EXPECT_EQ(e.line(), 1u);
    EXPECT_NE(std::string(e.what()).find("fixture.csv:1"), std::string::npos);
  }
}

TEST(TraceCsvError, WrongFieldCountReportsRowLine) {
  // Append a short row as the 4th line (header + 2 hosts + junk).
  const std::string text =
      corrupted_fixture([](std::string& t) { t += "1,2,3\n"; });
  std::istringstream in(text);
  try {
    read_csv(in, "fixture.csv");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 4u);
    EXPECT_NE(std::string(e.what()).find("field count"), std::string::npos);
  }
}

TEST(TraceCsvError, BadNumberNamesColumnAndLine) {
  // Corrupt host 43's memory field — data row 2, so line 3.
  const std::string text = corrupted_fixture([](std::string& t) {
    const auto pos = t.rfind("4096.5");
    ASSERT_NE(pos, std::string::npos);
    t.replace(pos, 6, "notnum");
  });
  std::istringstream in(text);
  try {
    read_csv(in, "fixture.csv");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("memory_mb"), std::string::npos);
  }
}

TEST(TraceCsvError, RejectsNonFiniteValues) {
  const std::string text = corrupted_fixture([](std::string& t) {
    const auto pos = t.find("4096.5");
    ASSERT_NE(pos, std::string::npos);
    t.replace(pos, 6, "inf");
  });
  std::istringstream in(text);
  try {
    read_csv(in, "fixture.csv");
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
  }
}

TEST(TraceCsvError, BrokenQuotingIsWrappedWithPosition) {
  // An unterminated quote swallows the rest of the input; the error must
  // still be a CsvError naming the row where the quote opened.
  const std::string text =
      corrupted_fixture([](std::string& t) { t += "\"unterminated\n"; });
  std::istringstream in(text);
  EXPECT_THROW(read_csv(in, "fixture.csv"), CsvError);
}

TEST(TraceCsvError, FileErrorsCarryThePath) {
  const std::string path = ::testing::TempDir() + "/corrupt_trace.csv";
  TraceStore store;
  store.add(sample_host());
  write_csv_file(store, path);
  // Truncate the data row mid-field.
  {
    std::ifstream in(path);
    std::stringstream all;
    all << in.rdbuf();
    std::string text = all.str();
    // Cut inside the data row, keeping the header line intact.
    const auto header_end = text.find('\n');
    ASSERT_NE(header_end, std::string::npos);
    text.resize(header_end + 6);
    std::ofstream out(path);
    out << text;
  }
  try {
    read_csv_file(path);
    FAIL() << "expected CsvError";
  } catch (const CsvError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_GE(e.line(), 2u);
  }
}

TEST(TraceCsvError, HeaderAccessorMatchesWrittenHeader) {
  TraceStore store;
  std::stringstream buffer;
  write_csv(store, buffer);
  std::string first_line;
  std::getline(buffer, first_line);
  std::string joined;
  for (const std::string& col : csv_header()) {
    if (!joined.empty()) joined += ',';
    joined += col;
  }
  EXPECT_EQ(first_line, joined);
}

}  // namespace
}  // namespace resmodel::trace

#include "trace/csv_io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace resmodel::trace {
namespace {

HostRecord sample_host() {
  HostRecord h;
  h.id = 42;
  h.created_day = -100;
  h.last_contact_day = 365;
  h.n_cores = 4;
  h.memory_mb = 4096.5;
  h.dhrystone_mips = 4120.25;
  h.whetstone_mips = 1861.125;
  h.disk_avail_gb = 98.0625;
  h.disk_total_gb = 250.5;
  h.cpu = CpuFamily::kIntelCore2;
  h.os = OsFamily::kWindowsVista;
  h.gpu = GpuType::kRadeon;
  h.gpu_memory_mb = 512.0;
  return h;
}

TEST(TraceCsv, RoundTripsExactly) {
  TraceStore store;
  store.add(sample_host());
  HostRecord other = sample_host();
  other.id = 43;
  other.gpu = GpuType::kNone;
  other.gpu_memory_mb = 0.0;
  store.add(other);

  std::stringstream buffer;
  write_csv(store, buffer);
  const TraceStore loaded = read_csv(buffer);

  ASSERT_EQ(loaded.size(), 2u);
  const HostRecord& h = loaded.host(0);
  EXPECT_EQ(h.id, 42u);
  EXPECT_EQ(h.created_day, -100);
  EXPECT_EQ(h.last_contact_day, 365);
  EXPECT_EQ(h.n_cores, 4);
  EXPECT_DOUBLE_EQ(h.memory_mb, 4096.5);
  EXPECT_DOUBLE_EQ(h.dhrystone_mips, 4120.25);
  EXPECT_DOUBLE_EQ(h.whetstone_mips, 1861.125);
  EXPECT_DOUBLE_EQ(h.disk_avail_gb, 98.0625);
  EXPECT_DOUBLE_EQ(h.disk_total_gb, 250.5);
  EXPECT_EQ(h.cpu, CpuFamily::kIntelCore2);
  EXPECT_EQ(h.os, OsFamily::kWindowsVista);
  EXPECT_EQ(h.gpu, GpuType::kRadeon);
  EXPECT_EQ(loaded.host(1).gpu, GpuType::kNone);
}

TEST(TraceCsv, EmptyStoreRoundTrips) {
  TraceStore store;
  std::stringstream buffer;
  write_csv(store, buffer);
  EXPECT_EQ(read_csv(buffer).size(), 0u);
}

TEST(TraceCsv, RejectsMissingHeader) {
  std::istringstream in("1,2,3\n");
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(TraceCsv, RejectsWrongFieldCount) {
  TraceStore store;
  store.add(sample_host());
  std::stringstream buffer;
  write_csv(store, buffer);
  std::string text = buffer.str();
  text += "1,2,3\n";  // short row
  std::istringstream in(text);
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(TraceCsv, RejectsBadNumber) {
  TraceStore store;
  store.add(sample_host());
  std::stringstream buffer;
  write_csv(store, buffer);
  std::string text = buffer.str();
  // Corrupt the memory field of the data row.
  const auto pos = text.find("4096.5");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "notnum");
  std::istringstream in(text);
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(TraceCsv, RejectsOutOfRangeEnum) {
  TraceStore store;
  store.add(sample_host());
  std::stringstream buffer;
  write_csv(store, buffer);
  std::string text = buffer.str();
  // cpu column holds "8" (kIntelCore2); replace the exact cell.
  const auto pos = text.rfind(",8,");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 3, ",99,");
  std::istringstream in(text);
  EXPECT_THROW(read_csv(in), std::runtime_error);
}

TEST(TraceCsv, FileRoundTrip) {
  TraceStore store;
  store.add(sample_host());
  const std::string path = ::testing::TempDir() + "/trace_io_test.csv";
  write_csv_file(store, path);
  const TraceStore loaded = read_csv_file(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.host(0).id, 42u);
}

TEST(TraceCsv, MissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/path/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace resmodel::trace

#include "trace/trace_store.h"

#include <gtest/gtest.h>

namespace resmodel::trace {
namespace {

HostRecord make_host(std::uint64_t id, int created, int last, int cores = 2,
                     double mem = 2048, double whet = 1500, double dhry = 3000,
                     double disk = 40) {
  HostRecord h;
  h.id = id;
  h.created_day = created;
  h.last_contact_day = last;
  h.n_cores = cores;
  h.memory_mb = mem;
  h.whetstone_mips = whet;
  h.dhrystone_mips = dhry;
  h.disk_avail_gb = disk;
  h.disk_total_gb = disk * 2;
  return h;
}

TEST(TraceStore, AddAndSize) {
  TraceStore store;
  EXPECT_TRUE(store.empty());
  store.add(make_host(1, 0, 10));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.host(0).id, 1u);
}

TEST(TraceStore, HostThrowsOutOfRange) {
  TraceStore store;
  EXPECT_THROW(store.host(0), std::out_of_range);
}

TEST(TraceStore, ActiveCountRespectsWindows) {
  TraceStore store;
  store.add(make_host(1, 0, 100));
  store.add(make_host(2, 50, 150));
  store.add(make_host(3, 120, 200));
  EXPECT_EQ(store.active_count(util::ModelDate::from_day_index(60)), 2u);
  EXPECT_EQ(store.active_count(util::ModelDate::from_day_index(110)), 1u);
  EXPECT_EQ(store.active_count(util::ModelDate::from_day_index(300)), 0u);
}

TEST(TraceStore, ActiveIndicesMatchCount) {
  TraceStore store;
  store.add(make_host(1, 0, 100));
  store.add(make_host(2, 200, 300));
  const auto idx = store.active_indices(util::ModelDate::from_day_index(50));
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx[0], 0u);
}

TEST(TraceStore, PlausibleSnapshotFiltersWithoutMutating) {
  TraceStore store;
  store.add(make_host(1, 0, 100, 4, 4096, 1700, 3500, 80));
  store.add(make_host(2, 0, 100, 1, 512, 2e5, 2100, 10));   // corrupt whet
  store.add(make_host(3, 0, 100, 2, 1024, 1500, 2500, 2e4));  // corrupt disk
  store.add(make_host(4, 0, 100));

  const auto date = util::ModelDate::from_day_index(50);
  const ResourceSnapshot filtered = store.snapshot_plausible(date);
  ASSERT_EQ(filtered.size(), 2u);
  EXPECT_DOUBLE_EQ(filtered.cores[0], 4.0);
  EXPECT_DOUBLE_EQ(filtered.cores[1], 2.0);

  // The store itself is untouched: the unfiltered snapshot still sees all
  // four records, exactly as before discard_implausible() would have run.
  EXPECT_EQ(store.size(), 4u);
  EXPECT_EQ(store.snapshot(date).size(), 4u);

  // Same columns as copy + discard_implausible + snapshot.
  TraceStore copied;
  for (const HostRecord& h : store.hosts()) copied.add(h);
  copied.discard_implausible();
  const ResourceSnapshot golden = copied.snapshot(date);
  ASSERT_EQ(golden.size(), filtered.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_DOUBLE_EQ(golden.whetstone_mips[i], filtered.whetstone_mips[i]);
    EXPECT_DOUBLE_EQ(golden.disk_avail_gb[i], filtered.disk_avail_gb[i]);
  }
}

TEST(TraceStore, SnapshotColumnsAligned) {
  TraceStore store;
  store.add(make_host(1, 0, 100, 4, 4096, 1700, 3500, 80));
  store.add(make_host(2, 0, 100, 1, 512, 1100, 2100, 10));
  const ResourceSnapshot snap =
      store.snapshot(util::ModelDate::from_day_index(50));
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.cores[0], 4.0);
  EXPECT_DOUBLE_EQ(snap.memory_per_core_mb[0], 1024.0);
  EXPECT_DOUBLE_EQ(snap.memory_per_core_mb[1], 512.0);
  EXPECT_DOUBLE_EQ(snap.disk_avail_gb[1], 10.0);
}

TEST(TraceStore, SnapshotExcludesInactive) {
  TraceStore store;
  store.add(make_host(1, 0, 10));
  const ResourceSnapshot snap =
      store.snapshot(util::ModelDate::from_day_index(20));
  EXPECT_EQ(snap.size(), 0u);
}

TEST(TraceStore, DiscardImplausibleRemovesAndCounts) {
  TraceStore store;
  store.add(make_host(1, 0, 10));
  HostRecord bad = make_host(2, 0, 10);
  bad.n_cores = 500;
  store.add(bad);
  HostRecord bad2 = make_host(3, 0, 10);
  bad2.dhrystone_mips = 2e5;
  store.add(bad2);
  EXPECT_EQ(store.discard_implausible(), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.host(0).id, 1u);
}

TEST(TraceStore, CpuFamilyCounts) {
  TraceStore store;
  HostRecord a = make_host(1, 0, 10);
  a.cpu = CpuFamily::kPentium4;
  HostRecord b = make_host(2, 0, 10);
  b.cpu = CpuFamily::kPentium4;
  HostRecord c = make_host(3, 0, 10);
  c.cpu = CpuFamily::kIntelCore2;
  store.add(a);
  store.add(b);
  store.add(c);
  const auto counts = store.cpu_family_counts(util::ModelDate::from_day_index(5));
  EXPECT_EQ(counts[static_cast<std::size_t>(CpuFamily::kPentium4)], 2u);
  EXPECT_EQ(counts[static_cast<std::size_t>(CpuFamily::kIntelCore2)], 1u);
}

TEST(TraceStore, OsFamilyCounts) {
  TraceStore store;
  HostRecord a = make_host(1, 0, 10);
  a.os = OsFamily::kLinux;
  store.add(a);
  const auto counts = store.os_family_counts(util::ModelDate::from_day_index(5));
  EXPECT_EQ(counts[static_cast<std::size_t>(OsFamily::kLinux)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(OsFamily::kWindowsXp)], 0u);
}

TEST(TraceStore, GpuCountsAndMemorySnapshot) {
  TraceStore store;
  HostRecord a = make_host(1, 0, 10);
  a.gpu = GpuType::kGeForce;
  a.gpu_memory_mb = 512;
  HostRecord b = make_host(2, 0, 10);  // no GPU
  store.add(a);
  store.add(b);
  const auto counts = store.gpu_type_counts(util::ModelDate::from_day_index(5));
  EXPECT_EQ(counts[static_cast<std::size_t>(GpuType::kNone)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(GpuType::kGeForce)], 1u);
  const auto mem = store.gpu_memory_snapshot(util::ModelDate::from_day_index(5));
  ASSERT_EQ(mem.size(), 1u);
  EXPECT_DOUBLE_EQ(mem[0], 512.0);
}

}  // namespace
}  // namespace resmodel::trace

#include "util/kv_store.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace resmodel::util {
namespace {

TEST(KvStore, SetAndGet) {
  KvStore kv;
  kv.set("name", std::string("value"));
  EXPECT_EQ(kv.get("name"), "value");
  EXPECT_TRUE(kv.contains("name"));
  EXPECT_FALSE(kv.contains("other"));
}

TEST(KvStore, SetOverwritesExisting) {
  KvStore kv;
  kv.set("k", std::string("a"));
  kv.set("k", std::string("b"));
  EXPECT_EQ(kv.get("k"), "b");
  EXPECT_EQ(kv.get_all("k").size(), 1u);
}

TEST(KvStore, AppendKeepsDuplicates) {
  KvStore kv;
  kv.append("k", "a");
  kv.append("k", "b");
  EXPECT_EQ(kv.get_all("k"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(kv.get("k"), "a");  // first wins for scalar get
}

TEST(KvStore, DoubleRoundTrip) {
  KvStore kv;
  kv.set("pi", 3.14159265358979312);
  EXPECT_DOUBLE_EQ(kv.get_double("pi"), 3.14159265358979312);
}

TEST(KvStore, IntRoundTrip) {
  KvStore kv;
  kv.set("n", static_cast<long long>(-123456789));
  EXPECT_EQ(kv.get_int("n"), -123456789);
}

TEST(KvStore, MissingKeyThrows) {
  const KvStore kv;
  EXPECT_THROW(kv.get("nope"), std::out_of_range);
}

TEST(KvStore, NonNumericThrows) {
  KvStore kv;
  kv.set("k", std::string("abc"));
  EXPECT_THROW(kv.get_double("k"), std::runtime_error);
  EXPECT_THROW(kv.get_int("k"), std::runtime_error);
}

TEST(KvStore, ParseSkipsCommentsAndBlanks) {
  const KvStore kv = KvStore::parse("# comment\n\n a = 1 \nb=2\n");
  EXPECT_EQ(kv.get("a"), "1");
  EXPECT_EQ(kv.get("b"), "2");
}

TEST(KvStore, ParseRejectsMissingEquals) {
  EXPECT_THROW(KvStore::parse("justakey\n"), std::runtime_error);
}

TEST(KvStore, SerializeParseRoundTrip) {
  KvStore kv;
  kv.set("alpha", 1.5);
  kv.set("beta", std::string("two words"));
  kv.append("list", "x");
  kv.append("list", "y");
  const KvStore parsed = KvStore::parse(kv.serialize());
  EXPECT_DOUBLE_EQ(parsed.get_double("alpha"), 1.5);
  EXPECT_EQ(parsed.get("beta"), "two words");
  EXPECT_EQ(parsed.get_all("list"), (std::vector<std::string>{"x", "y"}));
}

TEST(KvStore, KeysListsInInsertionOrderOnce) {
  KvStore kv;
  kv.append("b", "1");
  kv.append("a", "2");
  kv.append("b", "3");
  EXPECT_EQ(kv.keys(), (std::vector<std::string>{"b", "a"}));
}

}  // namespace
}  // namespace resmodel::util

#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace resmodel::util {
namespace {

std::string render(const Table& table) {
  std::ostringstream out;
  table.print(out);
  return out.str();
}

TEST(Table, RendersHeaderAndRows) {
  Table t({"Name", "Value"});
  t.add_row({"cores", "2"});
  const std::string s = render(t);
  EXPECT_NE(s.find("Name"), std::string::npos);
  EXPECT_NE(s.find("cores"), std::string::npos);
  EXPECT_NE(s.find("| cores"), std::string::npos);  // left-aligned label
}

TEST(Table, PadsToWidestCell) {
  Table t({"A", "B"});
  t.add_row({"longlabel", "1"});
  t.add_row({"x", "22"});
  const std::string s = render(t);
  // Every data line has the same width.
  std::istringstream in(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, MissingCellsRenderEmpty) {
  Table t({"A", "B", "C"});
  t.add_row({"only"});
  EXPECT_NO_THROW(render(t));
}

TEST(Table, TooManyCellsThrow) {
  Table t({"A"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, SetAlignOutOfRangeThrows) {
  Table t({"A"});
  EXPECT_THROW(t.set_align(5, Align::kLeft), std::out_of_range);
}

TEST(Table, SeparatorInsertsRule) {
  Table t({"A"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = render(t);
  // header rule + top + bottom + separator = 4 rules.
  std::size_t rules = 0;
  std::istringstream in(s);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TableFormat, NumFormatsFixed) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-1.0, 0), "-1");
}

TEST(TableFormat, PctMultipliesBy100) {
  EXPECT_EQ(Table::pct(0.125, 1), "12.5%");
}

TEST(TableFormat, SciUsesExponent) {
  EXPECT_EQ(Table::sci(1379000.0, 3), "1.379e+06");
}

}  // namespace
}  // namespace resmodel::util

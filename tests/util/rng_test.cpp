#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace resmodel::util {
namespace {

TEST(SplitMix64, ProducesKnownNonZeroSequence) {
  SplitMix64 sm(0);
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexApproximatelyUnbiased) {
  Rng rng(19);
  constexpr int kN = 60000;
  std::vector<int> counts(6, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.uniform_index(6)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 6.0, 0.05 * kN / 6.0);
  }
}

TEST(Rng, NormalMomentsMatchStandard) {
  Rng rng(23);
  constexpr int kN = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(29);
  constexpr int kN = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal(10.0, 3.0);
    sum += z;
    sum2 += z * z;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(31);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GE(rng.exponential(3.0), 0.0);
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SaveRestoreRoundTripsTheStream) {
  Rng rng(47);
  for (int i = 0; i < 17; ++i) rng.next();
  const Rng::State state = rng.save();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 256; ++i) expected.push_back(rng.next());
  rng.restore(state);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(rng.next(), expected[i]) << "diverged at draw " << i;
  }
}

TEST(Rng, SaveRestoreIntoFreshObjectIsEquivalent) {
  Rng original(53);
  for (int i = 0; i < 9; ++i) original.uniform();
  const Rng::State state = original.save();
  Rng fresh(0);
  fresh.restore(state);
  EXPECT_EQ(fresh.save(), state);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(fresh.next(), original.next());
  }
}

TEST(Rng, SaveRestorePreservesForkLineage) {
  // fork() consumes one draw from the parent; a restored parent must
  // fork the identical child stream — the engine restores per-client
  // rngs that were all forked from one population stream.
  Rng parent(59);
  const Rng::State state = parent.save();
  Rng child_a = parent.fork();
  parent.restore(state);
  Rng child_b = parent.fork();
  for (int i = 0; i < 128; ++i) {
    ASSERT_EQ(child_a.next(), child_b.next());
  }
}

TEST(Rng, SaveCapturesBoxMullerCacheAfterOddNormalCount) {
  // normal() produces pairs and caches the second value: after an odd
  // number of draws the cache is hot, and a state capture that dropped
  // it would shift every later normal by one. Mixed draw sequences
  // must round-trip bit-exactly.
  for (const int odd_draws : {1, 3, 7}) {
    Rng rng(61);
    for (int i = 0; i < odd_draws; ++i) rng.normal();
    const Rng::State state = rng.save();
    std::vector<double> expected;
    for (int i = 0; i < 32; ++i) expected.push_back(rng.normal());
    std::vector<std::uint64_t> raw;
    for (int i = 0; i < 8; ++i) raw.push_back(rng.next());
    rng.restore(state);
    for (int i = 0; i < 32; ++i) {
      ASSERT_EQ(rng.normal(), expected[i])
          << odd_draws << " prior draws, diverged at normal " << i;
    }
    for (int i = 0; i < 8; ++i) ASSERT_EQ(rng.next(), raw[i]);
  }
}

TEST(Rng, RestoreClearsAStaleBoxMullerCache) {
  // Restoring a cold-cache state into an rng whose cache is hot must
  // not leak the stale cached normal into the restored stream.
  Rng rng(67);
  const Rng::State cold = rng.save();
  Rng hot(67);
  hot.normal();  // cache now holds the pair's second value
  hot.restore(cold);
  Rng reference(67);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(hot.normal(), reference.normal());
  }
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and not crash
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
}  // namespace resmodel::util

#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace resmodel::util {
namespace {

std::string write_rows(const std::vector<CsvRow>& rows) {
  std::ostringstream out;
  CsvWriter writer(out);
  for (const CsvRow& row : rows) writer.write_row(row);
  return out.str();
}

std::vector<CsvRow> read_all(const std::string& text) {
  std::istringstream in(text);
  CsvReader reader(in);
  std::vector<CsvRow> rows;
  CsvRow row;
  while (reader.read_row(row)) rows.push_back(row);
  return rows;
}

TEST(CsvWriter, PlainFields) {
  EXPECT_EQ(write_rows({{"a", "b", "c"}}), "a,b,c\n");
}

TEST(CsvWriter, QuotesFieldsWithCommas) {
  EXPECT_EQ(write_rows({{"a,b", "c"}}), "\"a,b\",c\n");
}

TEST(CsvWriter, EscapesEmbeddedQuotes) {
  EXPECT_EQ(write_rows({{"say \"hi\""}}), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  EXPECT_EQ(write_rows({{"line1\nline2"}}), "\"line1\nline2\"\n");
}

TEST(CsvWriter, DoubleFieldRoundTripsExactly) {
  const double v = 0.1234567890123456789;
  const std::string s = CsvWriter::field(v);
  EXPECT_DOUBLE_EQ(std::stod(s), v);
}

TEST(CsvWriter, IntegerField) {
  EXPECT_EQ(CsvWriter::field(static_cast<long long>(-42)), "-42");
}

TEST(CsvReader, ReadsSimpleRows) {
  const auto rows = read_all("a,b\nc,d\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(CsvReader, HandlesMissingTrailingNewline) {
  const auto rows = read_all("a,b");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
}

TEST(CsvReader, EmptyFieldsPreserved) {
  const auto rows = read_all("a,,c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "", "c"}));
}

TEST(CsvReader, ToleratesCrLf) {
  const auto rows = read_all("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
}

TEST(CsvReader, ParsesQuotedFields) {
  const auto rows = read_all("\"a,b\",\"c\"\"d\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c\"d"}));
}

TEST(CsvReader, QuotedFieldSpansLines) {
  const auto rows = read_all("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"line1\nline2", "x"}));
}

TEST(CsvReader, ThrowsOnUnterminatedQuote) {
  EXPECT_THROW(read_all("\"oops"), std::runtime_error);
}

TEST(CsvReader, ThrowsOnQuoteInsideUnquotedField) {
  EXPECT_THROW(read_all("ab\"c,d\n"), std::runtime_error);
}

TEST(CsvRoundTrip, ArbitraryContentSurvives) {
  const std::vector<CsvRow> rows = {
      {"plain", "with,comma", "with\"quote", "multi\nline", ""},
      {"1.5", "-3", "0"},
  };
  auto parsed = read_all(write_rows(rows));
  ASSERT_EQ(parsed.size(), rows.size());
  EXPECT_EQ(parsed[0], rows[0]);
  EXPECT_EQ(parsed[1], rows[1]);
}

TEST(ParseCsvLine, SplitsOneLine) {
  EXPECT_EQ(parse_csv_line("x,y,z"), (CsvRow{"x", "y", "z"}));
}

TEST(ParseCsvLine, EmptyLineGivesEmptyRow) {
  EXPECT_TRUE(parse_csv_line("").empty());
}

}  // namespace
}  // namespace resmodel::util

#include "util/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace resmodel::util {
namespace {

TEST(AsciiChart, RejectsEmptyXGrid) {
  EXPECT_THROW(AsciiChart("t", {}), std::invalid_argument);
}

TEST(AsciiChart, RejectsMismatchedSeries) {
  AsciiChart chart("t", {0.0, 1.0});
  EXPECT_THROW(chart.add_series({"s", {1.0}}), std::invalid_argument);
}

TEST(AsciiChart, RendersTitleAndLegend) {
  AsciiChart chart("My Chart", {0.0, 1.0, 2.0});
  chart.add_series({"rising", {1.0, 2.0, 3.0}});
  std::ostringstream out;
  chart.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("My Chart"), std::string::npos);
  EXPECT_NE(s.find("rising"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesUseDistinctGlyphs) {
  AsciiChart chart("t", {0.0, 1.0});
  chart.add_series({"a", {1.0, 1.0}});
  chart.add_series({"b", {2.0, 2.0}});
  std::ostringstream out;
  chart.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("* = a"), std::string::npos);
  EXPECT_NE(s.find("o = b"), std::string::npos);
}

TEST(AsciiChart, LogScaleHandlesPositiveData) {
  AsciiChart chart("log", {0.0, 1.0, 2.0});
  chart.set_log_y(true);
  chart.add_series({"exp", {1.0, 10.0, 100.0}});
  std::ostringstream out;
  EXPECT_NO_THROW(chart.print(out));
}

TEST(AsciiChart, ConstantSeriesDoesNotCrash) {
  AsciiChart chart("flat", {0.0, 1.0});
  chart.add_series({"c", {5.0, 5.0}});
  std::ostringstream out;
  EXPECT_NO_THROW(chart.print(out));
}

TEST(AsciiChart, FixedRangeClipsOutliers) {
  AsciiChart chart("clip", {0.0, 1.0});
  chart.set_y_range(0.0, 1.0);
  chart.add_series({"huge", {0.5, 100.0}});
  std::ostringstream out;
  EXPECT_NO_THROW(chart.print(out));
}

TEST(BarChart, RendersBarsProportionally) {
  std::ostringstream out;
  print_bar_chart(out, "Bars", {{"a", 1.0}, {"b", 2.0}}, 10);
  const std::string s = out.str();
  EXPECT_NE(s.find("Bars"), std::string::npos);
  EXPECT_NE(s.find("#####"), std::string::npos);
}

TEST(BarChart, HandlesAllZeroValues) {
  std::ostringstream out;
  EXPECT_NO_THROW(print_bar_chart(out, "Z", {{"a", 0.0}}, 10));
}

}  // namespace
}  // namespace resmodel::util

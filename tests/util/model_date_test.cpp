#include "util/model_date.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace resmodel::util {
namespace {

TEST(ModelDate, EpochIsDayZeroYear2006) {
  const ModelDate epoch = ModelDate::from_ymd(2006, 1, 1);
  EXPECT_EQ(epoch.day_index(), 0);
  EXPECT_DOUBLE_EQ(epoch.year(), 2006.0);
  EXPECT_DOUBLE_EQ(epoch.t(), 0.0);
}

TEST(ModelDate, KnownCalendarOffsets) {
  EXPECT_EQ(ModelDate::from_ymd(2006, 1, 2).day_index(), 1);
  EXPECT_EQ(ModelDate::from_ymd(2006, 2, 1).day_index(), 31);
  EXPECT_EQ(ModelDate::from_ymd(2007, 1, 1).day_index(), 365);
  // 2008 is a leap year: 2009-01-01 = 365 + 365 + 366.
  EXPECT_EQ(ModelDate::from_ymd(2009, 1, 1).day_index(), 365 + 365 + 366);
}

TEST(ModelDate, NegativeDaysBeforeEpoch) {
  const ModelDate d = ModelDate::from_ymd(2005, 12, 31);
  EXPECT_EQ(d.day_index(), -1);
  EXPECT_LT(d.year(), 2006.0);
}

TEST(ModelDate, YmdRoundTripAcrossYears) {
  for (int year = 2003; year <= 2015; ++year) {
    for (int month : {1, 2, 3, 6, 12}) {
      for (int day : {1, 15, 28}) {
        const ModelDate d = ModelDate::from_ymd(year, month, day);
        const ModelDate::Ymd c = d.ymd();
        EXPECT_EQ(c.year, year);
        EXPECT_EQ(c.month, month);
        EXPECT_EQ(c.day, day);
      }
    }
  }
}

TEST(ModelDate, DayIndexRoundTrip) {
  for (int day = -1200; day <= 3000; day += 37) {
    const ModelDate d = ModelDate::from_day_index(day);
    EXPECT_EQ(ModelDate::parse(d.to_string()).day_index(), day);
  }
}

TEST(ModelDate, FromYearHitsYearBoundaries) {
  EXPECT_EQ(ModelDate::from_year(2006.0).day_index(), 0);
  EXPECT_EQ(ModelDate::from_year(2010.0),
            ModelDate::from_ymd(2010, 1, 1));
}

TEST(ModelDate, YearIsMonotoneInDayIndex) {
  double prev = ModelDate::from_day_index(-500).year();
  for (int day = -499; day < 2500; ++day) {
    const double y = ModelDate::from_day_index(day).year();
    ASSERT_GT(y, prev);
    prev = y;
  }
}

TEST(ModelDate, TMatchesPaperConvention) {
  // September 1, 2010 is about t = 4.67 (the GPU analysis anchor).
  const ModelDate sep2010 = ModelDate::from_ymd(2010, 9, 1);
  EXPECT_NEAR(sep2010.t(), 4.67, 0.01);
}

TEST(ModelDate, LeapYearRules) {
  EXPECT_TRUE(is_leap_year(2008));
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_FALSE(is_leap_year(2006));
  EXPECT_FALSE(is_leap_year(1900));
}

TEST(ModelDate, DaysInMonthHandlesFebruary) {
  EXPECT_EQ(days_in_month(2008, 2), 29);
  EXPECT_EQ(days_in_month(2009, 2), 28);
  EXPECT_EQ(days_in_month(2010, 12), 31);
}

TEST(ModelDate, InvalidDatesThrow) {
  EXPECT_THROW(ModelDate::from_ymd(2006, 13, 1), std::invalid_argument);
  EXPECT_THROW(ModelDate::from_ymd(2006, 0, 1), std::invalid_argument);
  EXPECT_THROW(ModelDate::from_ymd(2006, 2, 29), std::invalid_argument);
  EXPECT_THROW(ModelDate::from_ymd(2006, 4, 31), std::invalid_argument);
}

TEST(ModelDate, ParseRejectsGarbage) {
  EXPECT_THROW(ModelDate::parse("not-a-date"), std::invalid_argument);
  EXPECT_THROW(ModelDate::parse(""), std::invalid_argument);
}

TEST(ModelDate, ParseAcceptsIsoFormat) {
  EXPECT_EQ(ModelDate::parse("2010-09-01"),
            ModelDate::from_ymd(2010, 9, 1));
}

TEST(ModelDate, ToStringIsZeroPadded) {
  EXPECT_EQ(ModelDate::from_ymd(2006, 2, 3).to_string(), "2006-02-03");
}

TEST(ModelDate, PlusDaysAdvances) {
  const ModelDate d = ModelDate::from_ymd(2006, 1, 1);
  EXPECT_EQ(d.plus_days(31), ModelDate::from_ymd(2006, 2, 1));
  EXPECT_EQ(d.plus_days(-1), ModelDate::from_ymd(2005, 12, 31));
}

TEST(ModelDate, OrderingFollowsTime) {
  EXPECT_LT(ModelDate::from_ymd(2006, 1, 1), ModelDate::from_ymd(2006, 1, 2));
  EXPECT_GT(ModelDate::from_ymd(2010, 9, 1), ModelDate::from_ymd(2010, 8, 31));
}

}  // namespace
}  // namespace resmodel::util

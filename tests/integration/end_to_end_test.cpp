// Integration tests spanning the whole pipeline:
//   synth trace -> fit -> generate -> validate   (the paper's main loop)
//   boinc collection -> fit                       (Section IV end to end)
//   fit -> serialize -> reload -> generate        (the public tool's flow)
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "boinc/simulation.h"
#include "core/fit_pipeline.h"
#include "core/host_generator.h"
#include "core/validation.h"
#include "sim/experiment.h"
#include "synth/population.h"
#include "trace/csv_io.h"

namespace resmodel {
namespace {

const trace::TraceStore& ground_truth() {
  static const trace::TraceStore kTrace = [] {
    synth::PopulationConfig config;
    config.seed = 424242;
    config.target_active_hosts = 5000;
    trace::TraceStore store = synth::generate_population(config);
    // The paper discards implausible records (§V-B) before any analysis;
    // do the same to the ground truth used for direct comparisons.
    store.discard_implausible();
    return store;
  }();
  return kTrace;
}

const core::FitReport& fitted() {
  static const core::FitReport kReport = core::fit_model(ground_truth());
  return kReport;
}

TEST(EndToEnd, FittedModelValidatesAgainstHeldOutDate) {
  // Fit on 2006-2010 snapshots, generate for September 2010 (outside the
  // fitting window) and compare to the trace — the paper's §VI-B check.
  const core::HostGenerator generator(fitted().params);
  const auto sep2010 = util::ModelDate::from_ymd(2010, 9, 1);
  const trace::ResourceSnapshot actual = ground_truth().snapshot(sep2010);
  ASSERT_GT(actual.size(), 1000u);
  util::Rng rng(1);
  const auto generated =
      generator.generate_many(sep2010, actual.size(), rng);
  const auto comparisons = core::compare_resources(actual, generated);
  // The paper reports mean differences of 0.5%-13%; allow up to 20% per
  // resource on the synthetic loop.
  for (const core::ResourceComparison& c : comparisons) {
    EXPECT_LT(c.mean_diff_fraction, 0.20) << c.name;
    EXPECT_LT(c.stddev_diff_fraction, 0.40) << c.name;
  }
}

TEST(EndToEnd, GeneratedCorrelationsMatchTrace) {
  const core::HostGenerator generator(fitted().params);
  util::Rng rng(2);
  const auto generated = generator.generate_many(
      util::ModelDate::from_ymd(2010, 9, 1), 30000, rng);
  const stats::Matrix gen_corr =
      core::generated_correlation_matrix(generated);
  const stats::Matrix& actual_corr = fitted().full_correlation;
  // Headline structure: cores-memory and whet-dhry strongly positive,
  // disk uncorrelated — within 0.2 of the trace values (Table VIII vs
  // Table III in the paper shows comparable gaps).
  EXPECT_NEAR(gen_corr(0, 1), actual_corr(0, 1), 0.2);
  EXPECT_NEAR(gen_corr(3, 4), actual_corr(3, 4), 0.2);
  EXPECT_LT(std::fabs(gen_corr(5, 1)), 0.1);
}

TEST(EndToEnd, ModelSurvivesSerializationRoundTrip) {
  const std::string text = fitted().params.serialize();
  const core::ModelParams reloaded = core::ModelParams::deserialize(text);
  const core::HostGenerator a(fitted().params);
  const core::HostGenerator b(reloaded);
  util::Rng rng_a(3), rng_b(3);
  const auto date = util::ModelDate::from_ymd(2012, 1, 1);
  const auto hosts_a = a.generate_many(date, 50, rng_a);
  const auto hosts_b = b.generate_many(date, 50, rng_b);
  for (std::size_t i = 0; i < hosts_a.size(); ++i) {
    EXPECT_EQ(hosts_a[i].n_cores, hosts_b[i].n_cores);
    EXPECT_DOUBLE_EQ(hosts_a[i].whetstone_mips, hosts_b[i].whetstone_mips);
  }
}

TEST(EndToEnd, TraceSurvivesCsvRoundTripAndRefits) {
  std::stringstream buffer;
  trace::write_csv(ground_truth(), buffer);
  const trace::TraceStore reloaded = trace::read_csv(buffer);
  ASSERT_EQ(reloaded.size(), ground_truth().size());
  const core::FitReport refit = core::fit_model(reloaded);
  EXPECT_DOUBLE_EQ(refit.core_ratios[0].law.a, fitted().core_ratios[0].law.a);
  EXPECT_DOUBLE_EQ(refit.dhrystone_mean.law.b, fitted().dhrystone_mean.law.b);
}

TEST(EndToEnd, BoincCollectionFeedsFittingPipeline) {
  boinc::CollectionConfig config;
  config.population.seed = 77;
  config.population.target_active_hosts = 800;
  config.client.mean_contact_interval_days = 5.0;
  const boinc::CollectionResult collected = boinc::run_collection(config);

  const core::FitReport report = core::fit_model(collected.trace);
  // The collected trace carries the same hardware population, so the
  // fitted laws must resemble the published ones in sign and rough size.
  EXPECT_LT(report.core_ratios[0].law.b, -0.2);   // 1:2 decays
  EXPECT_GT(report.dhrystone_mean.law.b, 0.08);   // speeds grow
  EXPECT_GT(report.disk_mean.law.b, 0.1);         // disks grow
  EXPECT_NO_THROW(report.params.validate());
}

TEST(EndToEnd, UtilityExperimentRanksCorrelatedFirst) {
  // Figure 15's qualitative outcome on the synthetic loop: averaged over
  // apps and months, the correlated model is closer to the actual
  // allocation than both baselines.
  const sim::CorrelatedModel correlated(fitted().params);
  const auto normal = sim::NormalDistributionModel::fit(
      ground_truth(), {util::ModelDate::from_ymd(2006, 1, 1),
                       util::ModelDate::from_ymd(2007, 1, 1),
                       util::ModelDate::from_ymd(2008, 1, 1),
                       util::ModelDate::from_ymd(2009, 1, 1),
                       util::ModelDate::from_ymd(2010, 1, 1)});
  const sim::GridResourceModel grid(fitted().params, 0.5);
  const std::vector<const sim::HostSynthesisModel*> models = {
      &correlated, &normal, &grid};
  util::Rng rng(4);
  const std::vector<util::ModelDate> dates = {
      util::ModelDate::from_ymd(2010, 2, 1),
      util::ModelDate::from_ymd(2010, 6, 1)};
  const sim::UtilityExperimentResult result = sim::run_utility_experiment(
      ground_truth(), models, sim::paper_applications(), dates, rng);

  std::vector<double> avg(models.size(), 0.0);
  for (std::size_t m = 0; m < models.size(); ++m) {
    for (const auto& app_series : result.diff_percent[m]) {
      for (double d : app_series) avg[m] += d;
    }
  }
  EXPECT_LT(avg[0], avg[1]);  // correlated beats normal
  EXPECT_LT(avg[0], avg[2]);  // correlated beats grid
}

}  // namespace
}  // namespace resmodel

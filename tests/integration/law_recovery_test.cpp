// Parameterized closed-loop property: for a sweep of (a, b) exponential
// laws, a DiscreteRatioChain built from the law, sampled at many dates,
// must let the ratio-fitting machinery recover the law — the core
// statistical mechanism of the paper, tested across its parameter space.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model_params.h"
#include "stats/regression.h"
#include "util/rng.h"

namespace resmodel::core {
namespace {

struct LawCase {
  std::string label;
  double a;
  double b;
};

class RatioLawRecovery : public ::testing::TestWithParam<LawCase> {};

TEST_P(RatioLawRecovery, SampledCompositionRefitsLaw) {
  const LawCase& law_case = GetParam();
  DiscreteRatioChain chain;
  chain.values = {1, 2};
  chain.ratios = {{law_case.a, law_case.b, 0.0}};
  chain.validate();

  util::Rng rng(1234);
  std::vector<double> ts, observed_ratio;
  for (double t = 0.0; t <= 4.01; t += 0.25) {
    // Sample a finite population at each date and measure the count ratio.
    constexpr int kHosts = 40000;
    int count_lo = 0;
    for (int i = 0; i < kHosts; ++i) {
      if (chain.quantile(t, rng.uniform()) == 1.0) ++count_lo;
    }
    const int count_hi = kHosts - count_lo;
    if (count_lo == 0 || count_hi == 0) continue;
    ts.push_back(t);
    observed_ratio.push_back(static_cast<double>(count_lo) / count_hi);
  }
  ASSERT_GE(ts.size(), 5u);
  const stats::ExponentialLaw fit =
      stats::ExponentialLaw::fit(ts, observed_ratio);
  EXPECT_NEAR(fit.a, law_case.a, law_case.a * 0.08) << law_case.label;
  EXPECT_NEAR(fit.b, law_case.b, std::fabs(law_case.b) * 0.08 + 0.01)
      << law_case.label;
}

TEST_P(RatioLawRecovery, PmfIsConsistentWithLaw) {
  const LawCase& law_case = GetParam();
  DiscreteRatioChain chain;
  chain.values = {1, 2};
  chain.ratios = {{law_case.a, law_case.b, 0.0}};
  for (double t : {0.0, 1.0, 3.0, 6.0}) {
    const std::vector<double> pmf = chain.pmf(t);
    ASSERT_EQ(pmf.size(), 2u);
    const double expected_ratio = law_case.a * std::exp(law_case.b * t);
    EXPECT_NEAR(pmf[0] / pmf[1], expected_ratio,
                expected_ratio * 1e-9)
        << law_case.label << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperParameterSpace, RatioLawRecovery,
    ::testing::Values(
        LawCase{"paper_1_2_cores", 3.369, -0.5004},
        LawCase{"paper_2_4_cores", 17.49, -0.3217},
        LawCase{"paper_4_8_cores", 12.8, -0.2377},
        LawCase{"paper_mem_256_512", 0.5829, -0.2517},
        LawCase{"paper_mem_1g_15g", 3.98, -0.1367},
        LawCase{"slow_decay", 2.0, -0.05},
        LawCase{"fast_decay", 30.0, -0.8},
        LawCase{"growth", 0.5, 0.3},
        LawCase{"flat", 1.0, 0.0}),
    [](const auto& info) { return info.param.label; });

// Moment-law recovery across the Table-VI parameter space: noisy samples
// of a * e^(bt) must refit within tolerance.
class MomentLawRecovery : public ::testing::TestWithParam<LawCase> {};

TEST_P(MomentLawRecovery, NoisySeriesRefitsLaw) {
  const LawCase& law_case = GetParam();
  util::Rng rng(99);
  std::vector<double> ts, ys;
  for (double t = 0.0; t <= 4.01; t += 0.25) {
    ts.push_back(t);
    ys.push_back(law_case.a * std::exp(law_case.b * t) *
                 std::exp(rng.normal(0.0, 0.03)));
  }
  const stats::ExponentialLaw fit = stats::ExponentialLaw::fit(ts, ys);
  EXPECT_NEAR(fit.a, law_case.a, law_case.a * 0.06) << law_case.label;
  EXPECT_NEAR(fit.b, law_case.b, 0.025) << law_case.label;
  if (std::fabs(law_case.b) > 0.1) {
    EXPECT_GT(std::fabs(fit.r), 0.95) << law_case.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableVI, MomentLawRecovery,
    ::testing::Values(
        LawCase{"dhry_mean", 2064, 0.1709},
        LawCase{"dhry_variance", 1.379e6, 0.3313},
        LawCase{"whet_mean", 1179, 0.1157},
        LawCase{"whet_variance", 3.237e5, 0.1057},
        LawCase{"disk_mean", 31.59, 0.2691},
        LawCase{"disk_variance", 2890, 0.5224},
        LawCase{"gpu_adoption_like", 0.127, 0.6}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace resmodel::core

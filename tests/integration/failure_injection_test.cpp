// Failure injection: corrupted, truncated and degenerate inputs must fail
// loudly (typed exceptions) or be filtered — never produce silent garbage.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "core/fit_pipeline.h"
#include "core/host_generator.h"
#include "sim/experiment.h"
#include "synth/population.h"
#include "trace/csv_io.h"

namespace resmodel {
namespace {

trace::HostRecord valid_host(std::uint64_t id, int created, int last) {
  trace::HostRecord h;
  h.id = id;
  h.created_day = created;
  h.last_contact_day = last;
  h.n_cores = 2;
  h.memory_mb = 2048;
  h.whetstone_mips = 1500;
  h.dhrystone_mips = 3000;
  h.disk_avail_gb = 40;
  h.disk_total_gb = 80;
  return h;
}

TEST(FailureInjection, FitRejectsAllCorruptTrace) {
  trace::TraceStore store;
  for (int i = 0; i < 100; ++i) {
    trace::HostRecord h = valid_host(static_cast<std::uint64_t>(i), 0, 2000);
    h.dhrystone_mips = 5e5;  // beyond the §V-B threshold
    store.add(h);
  }
  EXPECT_THROW(core::fit_model(store), std::invalid_argument);
}

TEST(FailureInjection, FitSurvivesMinorityCorruption) {
  synth::PopulationConfig config;
  config.seed = 1;
  config.target_active_hosts = 2000;
  config.corrupt_fraction = 0.05;  // 40x the paper's rate
  const trace::TraceStore store = synth::generate_population(config);
  const core::FitReport report = core::fit_model(store);
  EXPECT_GT(report.discarded_hosts, store.size() / 50);
  // Fitted laws stay sane despite the corruption.
  EXPECT_NEAR(report.dhrystone_mean.law.b, 0.17, 0.06);
  EXPECT_NO_THROW(report.params.validate());
}

TEST(FailureInjection, TruncatedCsvThrows) {
  trace::TraceStore store;
  store.add(valid_host(1, 0, 100));
  std::stringstream buffer;
  trace::write_csv(store, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);  // cut mid-row
  std::istringstream in(text);
  EXPECT_THROW(trace::read_csv(in), std::runtime_error);
}

TEST(FailureInjection, CsvWithNanSmuggledInIsRejectedByFilter) {
  // "nan" parses as a double; the plausibility filter must reject it.
  trace::HostRecord h = valid_host(1, 0, 100);
  h.memory_mb = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(trace::is_plausible(h));
  h = valid_host(2, 0, 100);
  h.whetstone_mips = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(trace::is_plausible(h));
}

TEST(FailureInjection, GeneratorParamsWithExplodingRatiosStayFinite) {
  // A ratio law with a huge positive b drives one weight to ~0; pmf must
  // stay a valid distribution and generation must stay finite.
  core::ModelParams params = core::paper_params();
  params.cores.ratios[0].b = 5.0;  // 1-core count explodes relative to 2
  const core::HostGenerator generator(params);
  util::Rng rng(3);
  const auto hosts = generator.generate_many(
      util::ModelDate::from_ymd(2014, 1, 1), 1000, rng);
  for (const core::GeneratedHost& h : hosts) {
    ASSERT_GE(h.n_cores, 1);
    ASSERT_LE(h.n_cores, 16);
    ASSERT_TRUE(std::isfinite(h.memory_mb));
    ASSERT_TRUE(std::isfinite(h.disk_avail_gb));
  }
}

TEST(FailureInjection, ExperimentWithTinySnapshotWorksIfEveryAppGetsAHost) {
  trace::TraceStore store;
  // Exactly one host per Table-IX application.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    store.add(valid_host(i, -100, 2000));
  }
  const sim::CorrelatedModel model(core::paper_params());
  const std::vector<const sim::HostSynthesisModel*> models = {&model};
  util::Rng rng(4);
  const auto result = sim::run_utility_experiment(
      store, models, sim::paper_applications(),
      {util::ModelDate::from_ymd(2010, 1, 1)}, rng);
  EXPECT_EQ(result.host_counts[0], 4u);
  for (std::size_t a = 0; a < result.app_names.size(); ++a) {
    EXPECT_TRUE(std::isfinite(result.diff_percent[0][a][0]));
  }
}

TEST(FailureInjection, ExperimentGuardsZeroUtilityWhenHostsScarcerThanApps) {
  // Fewer hosts than applications: round-robin starves some apps and the
  // zero-actual-utility guard must fire instead of dividing by zero.
  trace::TraceStore store;
  store.add(valid_host(1, -100, 2000));
  store.add(valid_host(2, -100, 2000));
  const sim::CorrelatedModel model(core::paper_params());
  const std::vector<const sim::HostSynthesisModel*> models = {&model};
  util::Rng rng(5);
  EXPECT_THROW(sim::run_utility_experiment(
                   store, models, sim::paper_applications(),
                   {util::ModelDate::from_ymd(2010, 1, 1)}, rng),
               std::invalid_argument);
}

TEST(FailureInjection, ModelFileWithMissingKeysThrows) {
  const std::string partial = "model = resmodel-v1\ncores.count = 5\n";
  EXPECT_THROW(core::ModelParams::deserialize(partial), std::exception);
}

TEST(FailureInjection, ModelFileWithCorruptNumberThrows) {
  std::string text = core::paper_params().serialize();
  const auto pos = text.find("3.369");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 5, "oops!");
  EXPECT_THROW(core::ModelParams::deserialize(text), std::exception);
}

TEST(FailureInjection, NegativeCorrelationMatrixRejectedEndToEnd) {
  std::string text = core::paper_params().serialize();
  // Push a correlation above 1 -> not positive definite.
  const auto pos = text.find("correlation.0.1");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = text.find('\n', pos);
  text.replace(pos, eol - pos, "correlation.0.1 = 1.7");
  // Symmetric partner too, so symmetry passes and PD fails.
  const auto pos2 = text.find("correlation.1.0");
  const auto eol2 = text.find('\n', pos2);
  text.replace(pos2, eol2 - pos2, "correlation.1.0 = 1.7");
  EXPECT_THROW(core::ModelParams::deserialize(text), std::invalid_argument);
}

}  // namespace
}  // namespace resmodel

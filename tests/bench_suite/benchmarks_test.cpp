#include <gtest/gtest.h>

#include "bench_suite/dhrystone.h"
#include "bench_suite/harness.h"
#include "bench_suite/local_probe.h"
#include "bench_suite/whetstone.h"

namespace resmodel::bench_suite {
namespace {

constexpr double kQuick = 0.05;  // seconds; enough for a stable smoke score

TEST(Dhrystone, ProducesPositiveScore) {
  const BenchmarkScore score = run_dhrystone(kQuick);
  EXPECT_GT(score.mips, 0.0);
  EXPECT_GT(score.iterations, 0u);
  EXPECT_GT(score.elapsed_seconds, 0.0);
}

TEST(Dhrystone, ScoreIsIterationsOverBaseline) {
  const BenchmarkScore score = run_dhrystone(kQuick);
  EXPECT_NEAR(score.mips,
              score.iterations / score.elapsed_seconds / 1757.0,
              score.mips * 0.01);
}

TEST(Dhrystone, LongerRunSimilarScore) {
  const BenchmarkScore fast = run_dhrystone(kQuick);
  const BenchmarkScore slow = run_dhrystone(4 * kQuick);
  // Same machine, same benchmark: scores within a factor of 2 even on a
  // noisy CI box.
  EXPECT_GT(slow.mips, fast.mips / 2.0);
  EXPECT_LT(slow.mips, fast.mips * 2.0);
}

TEST(Whetstone, ProducesPositiveScore) {
  const BenchmarkScore score = run_whetstone(kQuick);
  EXPECT_GT(score.mips, 0.0);
  EXPECT_GT(score.iterations, 0u);
}

TEST(Whetstone, ModernHardwareBeatsPaperEra) {
  // Any 2020s machine should outrun the paper's 2010 host average
  // (1861 Whetstone MIPS) — a sanity check that units are plausible,
  // with an extremely loose lower bound for virtualized CI.
  const BenchmarkScore score = run_whetstone(0.2);
  EXPECT_GT(score.mips, 100.0);
}

TEST(Harness, RunsOnRequestedThreadCount) {
  const MultiCoreScore score = run_on_all_cores(run_dhrystone, kQuick, 2);
  EXPECT_EQ(score.threads, 2);
  EXPECT_GT(score.average_mips, 0.0);
  EXPECT_LE(score.min_mips, score.average_mips);
  EXPECT_GE(score.max_mips, score.average_mips);
}

TEST(Harness, DefaultsToHardwareConcurrency) {
  const MultiCoreScore score = run_on_all_cores(run_whetstone, kQuick);
  EXPECT_GE(score.threads, 1);
}

TEST(LocalProbe, ReportsSaneHardware) {
  const LocalHostInfo info = probe_local_host();
  EXPECT_GE(info.n_cores, 1);
  EXPECT_LE(info.n_cores, 4096);
  EXPECT_GT(info.memory_mb, 16.0);
  EXPECT_GT(info.disk_total_gb, 0.0);
  EXPECT_GE(info.disk_total_gb, info.disk_avail_gb);
  EXPECT_FALSE(info.os_name.empty());
}

TEST(LocalProbe, InvalidPathLeavesDiskZero) {
  const LocalHostInfo info = probe_local_host("/definitely/not/a/path");
  EXPECT_DOUBLE_EQ(info.disk_total_gb, 0.0);
}

TEST(LocalMeasurement, FullBoincStyleMeasurement) {
  const LocalMeasurement m = measure_local_host(kQuick);
  EXPECT_GE(m.info.n_cores, 1);
  EXPECT_GT(m.dhrystone_mips, 0.0);
  EXPECT_GT(m.whetstone_mips, 0.0);
}

}  // namespace
}  // namespace resmodel::bench_suite

// Cross-backend golden suite: every dispatch arm must reproduce the
// scalar reference bit for bit — schedules, allocations, bounds and the
// kernel-shape counters — on inputs engineered to stress the parts that
// differ between arms (planted exact ties, partial blocks, padded gate
// lanes, sign flips in the radix key).
//
// Arm coverage adapts to the machine: the SIMD levels exercised are the
// ones backend::effective_cpu() admits, so the same test binary is the
// forced-scalar CI leg under RESMODEL_SIMD=off and the full AVX-512
// matrix on hardware that has it.
#include "backend/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "churn/churn_scheduler.h"
#include "churn/interval_timeline.h"
#include "sim/allocator.h"
#include "sim/host_soa.h"
#include "sim/schedule_state.h"
#include "sim/utility.h"
#include "synth/availability.h"
#include "util/rng.h"

namespace resmodel::backend {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The SIMD levels whose dispatch tables are safe to call on this
/// machine (under the current RESMODEL_SIMD mask). kNone — the blocked
/// arm — is always present.
std::vector<SimdLevel> testable_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::kNone};
  const CpuFeatures cpu = effective_cpu();
  if (cpu.avx2) levels.push_back(SimdLevel::kAvx2);
  if (cpu.avx512) levels.push_back(SimdLevel::kAvx512);
  return levels;
}

constexpr Backend kAllBackends[] = {Backend::kAuto, Backend::kScalar,
                                    Backend::kBlocked, Backend::kSimd};

TEST(BackendResolve, ParseRoundTripsEveryName) {
  for (const Backend b : kAllBackends) {
    const auto parsed = parse_backend(to_string(b));
    ASSERT_TRUE(parsed.has_value()) << to_string(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(parse_backend("").has_value());
  EXPECT_FALSE(parse_backend("avx512").has_value());
  EXPECT_FALSE(parse_backend("Scalar").has_value());
}

TEST(BackendResolve, ResolutionContract) {
  for (const Backend b : kAllBackends) {
    const ResolvedBackend rb = resolve(b);
    // Never unresolved, and the SIMD level only rides on the kSimd arm.
    EXPECT_NE(rb.arm, Backend::kAuto);
    if (rb.arm != Backend::kSimd) EXPECT_EQ(rb.simd, SimdLevel::kNone);
  }
  // The explicit arms pass through untouched.
  EXPECT_EQ(resolve(Backend::kScalar).arm, Backend::kScalar);
  EXPECT_EQ(resolve(Backend::kBlocked).arm, Backend::kBlocked);
  // kAuto and kSimd agree: both take the widest level or fall back.
  const ResolvedBackend a = resolve(Backend::kAuto);
  const ResolvedBackend s = resolve(Backend::kSimd);
  EXPECT_EQ(a.arm, s.arm);
  EXPECT_EQ(a.simd, s.simd);
  const CpuFeatures cpu = effective_cpu();
  if (cpu.avx512) {
    EXPECT_EQ(s.simd, SimdLevel::kAvx512);
  } else if (cpu.avx2) {
    EXPECT_EQ(s.simd, SimdLevel::kAvx2);
  } else {
    EXPECT_EQ(s.arm, Backend::kBlocked);
  }
}

// ---------------------------------------------------------------------
// Kernel-level unit checks: each arm against the blocked arm's answer on
// planted inputs (the blocked arm is itself golden-tested against the
// scalar oracles through the schedule suites below).

TEST(KernelArms, EctBlockSweepTieBreaksBySmallestOriginalIndex) {
  double vals[kKernelBlock];
  double inv[kKernelBlock];
  std::uint32_t order[kKernelBlock];
  for (std::size_t i = 0; i < kKernelBlock; ++i) {
    vals[i] = 5.0 + static_cast<double>(i);
    inv[i] = 0.5;
    // Scrambled original indices: descending, so the smallest original
    // index among tied lanes is NOT the smallest lane number.
    order[i] = static_cast<std::uint32_t>(200 + kKernelBlock - 1 - i);
  }
  // Lanes 3, 17 and 40 tie for the minimum done value exactly.
  vals[3] = vals[17] = vals[40] = 1.0;
  const double task = 2.0;  // done = 1.0 + 2.0 * 0.5 = 2.0 on tied lanes
  for (const SimdLevel level : testable_levels()) {
    const KernelOps& ops = kernel_ops(level);
    const EctBlockMin r =
        ops.ect_block_sweep(vals, inv, order, kKernelBlock, task, kInf);
    EXPECT_EQ(r.value, 2.0) << to_string(level);
    // min(order[3], order[17], order[40]) = order[40].
    EXPECT_EQ(r.index, order[40]) << to_string(level);
    // Pruned call (minimum above the incumbent): index is unread by
    // contract, value must still be the exact minimum.
    const EctBlockMin pruned =
        ops.ect_block_sweep(vals, inv, order, kKernelBlock, task, 1.5);
    EXPECT_EQ(pruned.value, 2.0) << to_string(level);
  }
}

TEST(KernelArms, EctBlockSweepPartialLengthsMatchBlocked) {
  util::Rng rng(42);
  double vals[kKernelBlock];
  double inv[kKernelBlock];
  std::uint32_t order[kKernelBlock];
  for (std::size_t i = 0; i < kKernelBlock; ++i) {
    vals[i] = rng.uniform() * 10.0;
    inv[i] = 0.1 + rng.uniform();
    order[i] = static_cast<std::uint32_t>(1000 + i * 7 % kKernelBlock);
  }
  const KernelOps& blocked = kernel_ops(SimdLevel::kNone);
  for (const std::size_t len : {std::size_t{1}, std::size_t{17},
                                std::size_t{63}, kKernelBlock}) {
    const EctBlockMin want =
        blocked.ect_block_sweep(vals, inv, order, len, 3.0, kInf);
    for (const SimdLevel level : testable_levels()) {
      const EctBlockMin got =
          kernel_ops(level).ect_block_sweep(vals, inv, order, len, 3.0, kInf);
      EXPECT_EQ(got.value, want.value) << to_string(level) << " len " << len;
      EXPECT_EQ(got.index, want.index) << to_string(level) << " len " << len;
    }
  }
}

TEST(KernelArms, ColumnMinMatchesBlocked) {
  util::Rng rng(43);
  std::vector<double> x(257);
  for (double& v : x) v = rng.uniform() * 100.0 - 50.0;
  x[200] = x[11];  // planted duplicate of some value
  const KernelOps& blocked = kernel_ops(SimdLevel::kNone);
  for (const std::size_t len :
       {std::size_t{1}, std::size_t{7}, std::size_t{64}, x.size()}) {
    const double want = blocked.column_min(x.data(), len);
    for (const SimdLevel level : testable_levels()) {
      EXPECT_EQ(kernel_ops(level).column_min(x.data(), len), want)
          << to_string(level) << " len " << len;
    }
  }
}

TEST(KernelArms, RowBoundsArgminReturnsFirstMinimum) {
  // row + over * bmin_inv with an exact duplicated minimum: the argmin
  // must be the FIRST position attaining it (the warm-start contract —
  // the churn scheduler's swept-blocks counter depends on it).
  std::vector<double> row = {4.0, 2.0, 6.0, 2.0, 9.0, 2.0, 7.5};
  std::vector<double> bmin_inv = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const double over = 3.0;  // bounds = row + 3: minimum 5.0 at 1, 3, 5
  for (const SimdLevel level : testable_levels()) {
    std::vector<double> bounds(row.size(), -1.0);
    const std::uint32_t warm = kernel_ops(level).row_bounds_argmin(
        row.data(), bmin_inv.data(), over, row.size(), bounds.data());
    EXPECT_EQ(warm, 1u) << to_string(level);
    for (std::size_t b = 0; b < row.size(); ++b) {
      EXPECT_EQ(bounds[b], row[b] + over * bmin_inv[b])
          << to_string(level) << " block " << b;
    }
  }
  // Lengths around the vector width, random values, vs blocked.
  util::Rng rng(44);
  std::vector<double> long_row(100), long_inv(100);
  for (std::size_t i = 0; i < long_row.size(); ++i) {
    long_row[i] = rng.uniform() * 50.0;
    long_inv[i] = 0.01 + rng.uniform();
  }
  const KernelOps& blocked = kernel_ops(SimdLevel::kNone);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{5}, std::size_t{8}, std::size_t{9},
        std::size_t{100}}) {
    std::vector<double> want_bounds(n);
    const std::uint32_t want = blocked.row_bounds_argmin(
        long_row.data(), long_inv.data(), 2.5, n, want_bounds.data());
    for (const SimdLevel level : testable_levels()) {
      std::vector<double> got_bounds(n);
      const std::uint32_t got = kernel_ops(level).row_bounds_argmin(
          long_row.data(), long_inv.data(), 2.5, n, got_bounds.data());
      EXPECT_EQ(got, want) << to_string(level) << " n " << n;
      EXPECT_EQ(got_bounds, want_bounds) << to_string(level) << " n " << n;
    }
  }
}

/// Builds a 64-lane gate block with live lanes, checkpoint-routing
/// variety (target below / above each level cut) and trailing pad lanes
/// exactly as BoundGate packs them (inv = 0, sess/ready/next = +inf,
/// accr = 0).
template <typename Real>
struct GateBlockFixture {
  static constexpr std::size_t kLevels = 3;
  Real inv[kKernelBlock];
  Real sess[kKernelBlock];
  Real ready[kKernelBlock];
  Real next[kKernelBlock];
  Real accr[kKernelBlock];
  Real c[kLevels][kKernelBlock];
  Real phi[kLevels][kKernelBlock];

  explicit GateBlockFixture(std::uint64_t seed, std::size_t live) {
    util::Rng rng(seed);
    constexpr Real inf = std::numeric_limits<Real>::infinity();
    for (std::size_t i = 0; i < kKernelBlock; ++i) {
      if (i < live) {
        inv[i] = static_cast<Real>(0.001 + rng.uniform() * 0.01);
        sess[i] = static_cast<Real>(rng.uniform() * 4.0);
        ready[i] = static_cast<Real>(rng.uniform() * 10.0);
        next[i] = ready[i] + static_cast<Real>(rng.uniform() * 5.0);
        accr[i] = static_cast<Real>(rng.uniform() * 2.0);
        for (std::size_t k = 0; k < kLevels; ++k) {
          c[k][i] = accr[i] + static_cast<Real>(k) +
                    static_cast<Real>(rng.uniform());
          phi[k][i] = ready[i] + static_cast<Real>(k) * Real(2) +
                      static_cast<Real>(rng.uniform());
        }
      } else {
        inv[i] = Real(0);
        sess[i] = ready[i] = next[i] = inf;
        accr[i] = Real(0);
        for (std::size_t k = 0; k < kLevels; ++k) {
          c[k][i] = inf;
          phi[k][i] = inf;
        }
      }
    }
  }

  GateBlockView<Real> view(bool checkpoint) const {
    GateBlockView<Real> v;
    v.inv = inv;
    v.sess = sess;
    v.ready = ready;
    v.next = next;
    v.accr = accr;
    for (std::size_t k = 0; k < kLevels; ++k) {
      v.c[k] = c[k];
      v.phi[k] = phi[k];
    }
    v.levels = kLevels;
    v.checkpoint = checkpoint;
    return v;
  }
};

template <typename Real>
void expect_gate_sweeps_match() {
  const KernelOps& blocked = kernel_ops(SimdLevel::kNone);
  for (const std::size_t live : {kKernelBlock, std::size_t{41}}) {
    const GateBlockFixture<Real> fx(live * 31 + 7, live);
    for (const bool checkpoint : {true, false}) {
      const GateBlockView<Real> v = fx.view(checkpoint);
      for (const Real task : {Real(50), Real(900)}) {
        Real want[kKernelBlock];
        if constexpr (std::is_same_v<Real, float>) {
          blocked.gate_sweep_f32(v, task, want);
        } else {
          blocked.gate_sweep_f64(v, task, want);
        }
        // Pad lanes must bound to +inf through every arm.
        for (std::size_t i = live; i < kKernelBlock; ++i) {
          EXPECT_EQ(want[i], std::numeric_limits<Real>::infinity());
        }
        for (const SimdLevel level : testable_levels()) {
          Real got[kKernelBlock];
          if constexpr (std::is_same_v<Real, float>) {
            kernel_ops(level).gate_sweep_f32(v, task, got);
          } else {
            kernel_ops(level).gate_sweep_f64(v, task, got);
          }
          for (std::size_t i = 0; i < kKernelBlock; ++i) {
            EXPECT_EQ(got[i], want[i])
                << to_string(level) << (checkpoint ? " ckpt" : " restart")
                << " live " << live << " lane " << i;
          }
        }
      }
    }
  }
}

TEST(KernelArms, GateSweepFloat32MatchesBlocked) {
  expect_gate_sweeps_match<float>();
}

TEST(KernelArms, GateSweepFloat64MatchesBlocked) {
  expect_gate_sweeps_match<double>();
}

TEST(KernelArms, ScorePackMatchesBlockedIncludingSignsAndTies) {
  const std::size_t n = 101;  // odd tail for the 4/8-wide sweeps
  std::vector<double> cols[5];
  util::Rng rng(45);
  for (auto& col : cols) {
    col.resize(n);
    for (double& v : col) v = rng.uniform() * 20.0 - 10.0;  // both signs
  }
  // Planted exact ties: hosts 10 and 90 identical in every column.
  for (auto& col : cols) col[90] = col[10];
  const KernelOps& blocked = kernel_ops(SimdLevel::kNone);
  const ScoreWeights weight_sets[] = {
      {{0.25, 0.1, 0.3, 0.2, 0.15}},
      {{1.0, 0.0, 0.0, 0.0, 0.0}},
      // All-zero weights: every score is a signed zero — the key must
      // normalize -0.0 and +0.0 onto one key in every arm.
      {{0.0, 0.0, 0.0, 0.0, 0.0}},
  };
  for (const ScoreWeights& w : weight_sets) {
    std::vector<double> want_score(n), got_score(n);
    std::vector<std::uint64_t> want_pref(n), got_pref(n);
    blocked.score_pack(cols[0].data(), cols[1].data(), cols[2].data(),
                       cols[3].data(), cols[4].data(), w, n,
                       want_score.data(), want_pref.data());
    // Tied hosts share the key half; low halves are the host indices.
    EXPECT_EQ(want_pref[10] >> 32, want_pref[90] >> 32);
    EXPECT_EQ(want_pref[10] & 0xFFFFFFFFull, 10u);
    EXPECT_EQ(want_pref[90] & 0xFFFFFFFFull, 90u);
    for (const SimdLevel level : testable_levels()) {
      kernel_ops(level).score_pack(cols[0].data(), cols[1].data(),
                                   cols[2].data(), cols[3].data(),
                                   cols[4].data(), w, n, got_score.data(),
                                   got_pref.data());
      EXPECT_EQ(got_score, want_score) << to_string(level);
      EXPECT_EQ(got_pref, want_pref) << to_string(level);
    }
  }
}

// ---------------------------------------------------------------------
// ECT schedule goldens: every requested backend vs the scalar reference,
// over populations engineered for tie pressure, at sizes spanning
// partial / exact / multi-block layouts, from cold and warm states.

std::vector<double> tie_heavy_rates(std::size_t n) {
  // One rate: every completion ties every task, so the whole schedule is
  // decided by the tie-break chain.
  return std::vector<double>(n, 750.0);
}

std::vector<double> dense_near_tie_rates(std::size_t n) {
  // Two exact values interleaved: heavy exact-tie runs inside blocks
  // plus cross-block ties after the rate sort.
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = (i % 2 == 0) ? 500.0 : 500.0000001;
  }
  return rates;
}

std::vector<double> random_rates(std::size_t n, std::uint64_t seed) {
  std::vector<double> rates(n);
  util::Rng rng(seed);
  for (double& r : rates) r = 50.0 + rng.uniform() * 5000.0;
  return rates;
}

std::vector<double> random_tasks(std::size_t n, std::uint64_t seed) {
  std::vector<double> tasks(n);
  util::Rng rng(seed);
  for (double& t : tasks) t = 200.0 + rng.uniform() * 4000.0;
  return tasks;
}

void expect_ect_identical(const std::vector<double>& rates,
                          const std::vector<double>& tasks,
                          const std::string& label) {
  sim::ScheduleState ref = sim::ScheduleState::from_rates(rates);
  const std::vector<double> warm_tasks = random_tasks(64, 77);
  // Warm the reference the same way the backends are warmed below.
  sim::ect_schedule_reference(ref, warm_tasks);
  const sim::DynamicScheduleTotals want = sim::ect_schedule_reference(ref, tasks);
  for (const Backend b : kAllBackends) {
    sim::ScheduleState state = sim::ScheduleState::from_rates(rates);
    state.backend = b;
    sim::ect_schedule_blocked(state, warm_tasks);  // warm: free_at spread
    const sim::DynamicScheduleTotals got = sim::ect_schedule_blocked(state, tasks);
    EXPECT_EQ(got.makespan_days, want.makespan_days)
        << label << " backend " << to_string(b);
    EXPECT_EQ(got.total_cpu_days, want.total_cpu_days)
        << label << " backend " << to_string(b);
    for (std::size_t h = 0; h < rates.size(); ++h) {
      ASSERT_EQ(state.free_at[h], ref.free_at[h])
          << label << " backend " << to_string(b) << " host " << h;
      ASSERT_EQ(state.busy_days[h], ref.busy_days[h])
          << label << " backend " << to_string(b) << " host " << h;
    }
  }
}

TEST(EctGoldens, AllBackendsMatchReferenceAcrossPopulations) {
  for (const std::size_t hosts :
       {std::size_t{1}, std::size_t{64}, std::size_t{257}}) {
    const std::vector<double> tasks = random_tasks(4 * hosts + 32, hosts);
    expect_ect_identical(tie_heavy_rates(hosts), tasks,
                         "tie-heavy/" + std::to_string(hosts));
    expect_ect_identical(dense_near_tie_rates(hosts), tasks,
                         "near-tie/" + std::to_string(hosts));
    expect_ect_identical(random_rates(hosts, hosts + 1), tasks,
                         "random/" + std::to_string(hosts));
  }
}

// ---------------------------------------------------------------------
// Churn schedule goldens: arms x interruption policies x column
// precision vs the scalar full-scan oracle, counters included where the
// contract pins them (swept blocks / resolved lanes are kernel-shape
// telemetry: identical for every non-scalar arm).

TEST(ChurnGoldens, AllBackendsMatchReferenceAcrossPoliciesAndPrecision) {
  const std::size_t hosts = 300;
  const std::vector<double> rates = random_rates(hosts, 9);
  const std::vector<double> tasks = random_tasks(600, 10);
  util::Rng tl_rng(11);
  const churn::IntervalTimeline timeline = churn::IntervalTimeline::generate(
      synth::AvailabilityModel{}, hosts, 0.0, 60.0, tl_rng);
  constexpr churn::InterruptionPolicy kPolicies[] = {
      churn::InterruptionPolicy::kCheckpoint,
      churn::InterruptionPolicy::kRestart,
      churn::InterruptionPolicy::kAbandon,
  };
  for (const churn::InterruptionPolicy policy : kPolicies) {
    for (const bool float32 : {true, false}) {
      churn::ChurnSchedulerConfig config;
      config.float32_columns = float32;
      sim::ScheduleState ref_state = sim::ScheduleState::from_rates(rates);
      churn::ChurnScheduler ref(ref_state, timeline, config);
      const churn::ChurnScheduleTotals want = ref.run_reference(tasks, policy);
      // The blocked arm's counters are the shape baseline the SIMD arms
      // must reproduce exactly — so it runs first.
      std::uint64_t blocked_swept = 0, blocked_lanes = 0;
      for (const Backend b : {Backend::kBlocked, Backend::kScalar,
                              Backend::kAuto, Backend::kSimd}) {
        config.backend = b;
        sim::ScheduleState state = sim::ScheduleState::from_rates(rates);
        churn::ChurnScheduler sched(state, timeline, config);
        const churn::ChurnScheduleTotals got = sched.run(tasks, policy);
        const std::string label = to_string(policy) + (float32 ? "/f32" : "/f64") +
                                  "/" + to_string(b);
        EXPECT_EQ(got.makespan_days, want.makespan_days) << label;
        EXPECT_EQ(got.total_cpu_days, want.total_cpu_days) << label;
        EXPECT_EQ(got.wasted_cpu_days, want.wasted_cpu_days) << label;
        EXPECT_EQ(got.interruptions, want.interruptions) << label;
        for (std::size_t h = 0; h < hosts; ++h) {
          ASSERT_EQ(state.free_at[h], ref_state.free_at[h])
              << label << " host " << h;
          ASSERT_EQ(state.busy_days[h], ref_state.busy_days[h])
              << label << " host " << h;
        }
        if (b == Backend::kBlocked) {
          blocked_swept = got.swept_blocks;
          blocked_lanes = got.resolved_lanes;
        } else if (b != Backend::kScalar) {
          // kAuto / kSimd: identical pruning shape, not just results.
          EXPECT_EQ(got.swept_blocks, blocked_swept) << label;
          EXPECT_EQ(got.resolved_lanes, blocked_lanes) << label;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Allocator goldens: the fused score+pack sweep through every arm vs the
// pow-based reference, on a population with planted identical hosts so
// the radix key's tie path is exercised.

TEST(AllocatorGoldens, AllBackendsMatchReference) {
  const std::size_t hosts = 600;
  std::vector<sim::HostResources> aos(hosts);
  util::Rng rng(13);
  for (std::size_t h = 0; h < hosts; ++h) {
    aos[h].cores = 1.0 + std::floor(rng.uniform() * 8.0);
    aos[h].memory_mb = 512.0 + rng.uniform() * 8192.0;
    aos[h].dhrystone_mips = 500.0 + rng.uniform() * 4000.0;
    aos[h].whetstone_mips = 400.0 + rng.uniform() * 3000.0;
    aos[h].disk_avail_gb = 1.0 + rng.uniform() * 500.0;
  }
  // Planted duplicates: identical hosts must tie and resolve by index.
  for (std::size_t h = 30; h < 40; ++h) aos[h] = aos[29];
  const sim::HostResourcesSoA soa = sim::HostResourcesSoA::from_hosts(aos);
  const std::span<const sim::ApplicationSpec> apps = sim::paper_applications();
  const sim::AllocationResult want =
      sim::allocate_round_robin_reference(apps, aos);
  for (const Backend b : kAllBackends) {
    const sim::AllocationResult got =
        sim::allocate_round_robin(apps, soa, /*threads=*/2, b);
    const std::string label = "backend " + to_string(b);
    EXPECT_EQ(got.assignment, want.assignment) << label;
    EXPECT_EQ(got.hosts_assigned, want.hosts_assigned) << label;
    ASSERT_EQ(got.total_utility.size(), want.total_utility.size()) << label;
    for (std::size_t a = 0; a < want.total_utility.size(); ++a) {
      EXPECT_NEAR(got.total_utility[a], want.total_utility[a],
                  1e-9 * want.total_utility[a])
          << label << " app " << a;
    }
  }
}

}  // namespace
}  // namespace resmodel::backend

#include "cli_commands.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/model_params.h"
#include "trace/csv_io.h"

namespace resmodel::cli {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

int run(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

TEST(Cli, NoArgsPrintsUsage) {
  std::string err;
  EXPECT_EQ(run({}, nullptr, &err), kUsage);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  std::string err;
  EXPECT_EQ(run({"frobnicate"}, nullptr, &err), kUsage);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(Cli, SynthWritesTrace) {
  const std::string path = temp_path("cli_synth.csv");
  std::string out;
  ASSERT_EQ(run({"synth", path, "500", "3"}, &out), kOk);
  EXPECT_NE(out.find("host records"), std::string::npos);
  const trace::TraceStore store = trace::read_csv_file(path);
  EXPECT_GT(store.size(), 1000u);
}

TEST(Cli, SweepRunsPolicyGrid) {
  const std::string model_path = temp_path("cli_sweep_model.txt");
  {
    std::ofstream model_out(model_path);
    model_out << core::paper_params().serialize();
  }
  std::string out;
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "300", "500,1000",
                 "--policies=rr,ect", "--threads=2", "--seed=5"},
                &out),
            kOk);
  // 0 is a valid workload seed (unlike the count arguments).
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "200",
                 "--policies=ect", "--seed=0"}),
            kOk);
  EXPECT_NE(out.find("Policy sweep"), std::string::npos);
  EXPECT_NE(out.find("dynamic ECT"), std::string::npos);
  EXPECT_NE(out.find("Correlated"), std::string::npos);
  EXPECT_NE(out.find("Independent"), std::string::npos);
  EXPECT_NE(out.find("500 tasks"), std::string::npos);
  EXPECT_NE(out.find("1000 tasks"), std::string::npos);
}

TEST(Cli, SweepChurnFlags) {
  const std::string model_path = temp_path("cli_sweep_churn_model.txt");
  {
    std::ofstream model_out(model_path);
    model_out << core::paper_params().serialize();
  }
  // --churn appends all three interruption policies beside the base set.
  std::string out;
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--policies=ect", "--churn"},
                &out),
            kOk);
  EXPECT_NE(out.find("dynamic ECT"), std::string::npos);
  EXPECT_NE(out.find("churn ECT (checkpoint)"), std::string::npos);
  EXPECT_NE(out.find("churn ECT (restart)"), std::string::npos);
  EXPECT_NE(out.find("churn ECT (abandon)"), std::string::npos);
  EXPECT_NE(out.find("churn cells:"), std::string::npos);

  // --interrupt names a subset (and implies --churn).
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--policies=ect", "--interrupt=restart"},
                &out),
            kOk);
  EXPECT_NE(out.find("churn ECT (restart)"), std::string::npos);
  EXPECT_EQ(out.find("churn ECT (checkpoint)"), std::string::npos);

  // --avail-coupling annotates the header and runs coupled.
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--policies=ect", "--churn", "--avail-coupling=-0.5"},
                &out),
            kOk);
  EXPECT_NE(out.find("speed-coupled availability"), std::string::npos);

  // --churn-levels tunes the kernel's lookahead depth and, like
  // --interrupt, implies --churn.
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--policies=ect", "--churn-levels=2"},
                &out),
            kOk);
  EXPECT_NE(out.find("churn ECT (checkpoint)"), std::string::npos);
}

TEST(Cli, SweepRejectsBadChurnFlags) {
  const std::string model_path = temp_path("cli_sweep_churn_bad_model.txt");
  {
    std::ofstream model_out(model_path);
    model_out << core::paper_params().serialize();
  }
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--interrupt=explode"}),
            kFailure);
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--avail-coupling=2.0"}),
            kFailure);
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--avail-coupling=fast"}),
            kFailure);
  // Coupling with nothing to consume it (no --availability, no churn
  // policy) must be refused, not silently ignored.
  std::string err;
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--policies=ect", "--avail-coupling=0.5"},
                nullptr, &err),
            kUsage);
  EXPECT_NE(err.find("--avail-coupling needs"), std::string::npos);
  // With --availability it is consumed even without churn policies.
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--policies=ect", "--availability",
                 "--avail-coupling=0.5"}),
            kOk);
  // --churn-levels is validated up front like the other knobs: zero,
  // over-depth and garbage are all refused before any cell runs.
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--churn-levels=0"}),
            kFailure);
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--churn-levels=99"}),
            kFailure);
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--churn-levels=many"}),
            kFailure);
}

TEST(Cli, SweepRejectsBadArgs) {
  const std::string model_path = temp_path("cli_sweep_bad_model.txt");
  {
    std::ofstream model_out(model_path);
    model_out << core::paper_params().serialize();
  }
  EXPECT_EQ(run({"sweep"}), kUsage);
  std::string err;
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "--frobnicate"},
                nullptr, &err),
            kUsage);
  EXPECT_NE(err.find("unknown flag"), std::string::npos);
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--policies=warp"}),
            kFailure);
  // Negative seeds must not silently wrap through stoull.
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--seed=-1"}),
            kFailure);
}

TEST(Cli, BackendsPrintsDispatchTable) {
  std::string out;
  ASSERT_EQ(run({"backends"}, &out), kOk);
  EXPECT_NE(out.find("cpu features:"), std::string::npos);
  // Every requested arm appears with its resolution; scalar and blocked
  // always resolve to themselves regardless of the CPU.
  EXPECT_NE(out.find("auto"), std::string::npos);
  EXPECT_NE(out.find("scalar"), std::string::npos);
  EXPECT_NE(out.find("blocked"), std::string::npos);
  EXPECT_NE(out.find("simd"), std::string::npos);
  std::string err;
  EXPECT_EQ(run({"backends", "extra"}, nullptr, &err), kUsage);
  EXPECT_NE(err.find("no arguments"), std::string::npos);
}

TEST(Cli, SweepBackendFlag) {
  const std::string model_path = temp_path("cli_sweep_backend_model.txt");
  {
    std::ofstream model_out(model_path);
    model_out << core::paper_params().serialize();
  }
  // Every arm must accept the grid and produce identical makespans — the
  // bit-identity contract surfaced at the CLI level (same seed, same
  // hosts, only the kernel arm differs).
  std::string auto_out, scalar_out, blocked_out, simd_out;
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--policies=ect,pull", "--churn", "--seed=7",
                 "--backend=auto"},
                &auto_out),
            kOk);
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--policies=ect,pull", "--churn", "--seed=7",
                 "--backend=scalar"},
                &scalar_out),
            kOk);
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--policies=ect,pull", "--churn", "--seed=7",
                 "--backend=blocked"},
                &blocked_out),
            kOk);
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--policies=ect,pull", "--churn", "--seed=7",
                 "--backend=simd"},
                &simd_out),
            kOk);
  EXPECT_EQ(auto_out, scalar_out);
  EXPECT_EQ(auto_out, blocked_out);
  EXPECT_EQ(auto_out, simd_out);
  std::string err;
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--backend=quantum"},
                nullptr, &err),
            kFailure);
  EXPECT_NE(err.find("bad --backend"), std::string::npos);
}

TEST(Cli, SweepReplicationFlags) {
  const std::string model_path = temp_path("cli_sweep_repl_model.txt");
  {
    std::ofstream model_out(model_path);
    model_out << core::paper_params().serialize();
  }
  // The full robustness surface: quorum replication, deadline re-issue,
  // fault mix. Default policies narrow to the ECT family and the outcome
  // table is emitted.
  std::string out;
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--replication=2/3", "--deadline-days=4", "--backoff=1.5",
                 "--retries=2", "--fault-mix=crash:0.1,corrupt:0.05",
                 "--seed=7"},
                &out),
            kOk);
  EXPECT_NE(out.find("replication outcomes (2-of-3 quorum"), std::string::npos);
  EXPECT_NE(out.find("Reissues"), std::string::npos);
  EXPECT_EQ(out.find("round robin"), std::string::npos);  // narrowed grid
  // Deterministic: the identical invocation reproduces the identical
  // tables, counters included.
  std::string again;
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "200", "400",
                 "--replication=2/3", "--deadline-days=4", "--backoff=1.5",
                 "--retries=2", "--fault-mix=crash:0.1,corrupt:0.05",
                 "--seed=7"},
                &again),
            kOk);
  EXPECT_EQ(out, again);
  // Composes with churn (the churn columns join the narrowed grid).
  std::string churn_out;
  ASSERT_EQ(run({"sweep", model_path, "2010-06-01", "150", "300",
                 "--churn", "--replication=2/3", "--fault-mix=crash:0.1",
                 "--seed=7"},
                &churn_out),
            kOk);
  EXPECT_NE(churn_out.find("churn ECT (checkpoint)"), std::string::npos);
  EXPECT_NE(churn_out.find("replication outcomes"), std::string::npos);
}

TEST(Cli, SweepRejectsBadReplicationFlags) {
  const std::string model_path = temp_path("cli_sweep_repl_bad_model.txt");
  {
    std::ofstream model_out(model_path);
    model_out << core::paper_params().serialize();
  }
  std::string err;
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--replication=3"},
                nullptr, &err),
            kFailure);
  EXPECT_NE(err.find("bad --replication"), std::string::npos);
  // Quorum above the replica count is caught by config validation.
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--replication=4/3"},
                nullptr, &err),
            kFailure);
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--fault-mix=gremlin:0.1"},
                nullptr, &err),
            kFailure);
  EXPECT_NE(err.find("bad --fault-mix"), std::string::npos);
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--fault-mix=crash:0.7,corrupt:0.7"},
                nullptr, &err),
            kFailure);
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--deadline-days=-1"},
                nullptr, &err),
            kFailure);
  EXPECT_NE(err.find("bad --deadline-days"), std::string::npos);
  // Static policies cannot honor replication deadlines: explicit
  // --policies=rr with replication is refused by the sweep.
  EXPECT_EQ(run({"sweep", model_path, "2010-06-01", "100", "50",
                 "--policies=rr", "--replication=2/3"},
                nullptr, &err),
            kFailure);
}

TEST(Cli, SynthRejectsBadArgs) {
  EXPECT_EQ(run({"synth"}), kUsage);
  EXPECT_EQ(run({"synth", temp_path("x.csv"), "notanumber"}), kFailure);
}

TEST(Cli, FullPipelineSynthFitGenerateValidatePredict) {
  const std::string trace_path = temp_path("cli_pipe.csv");
  const std::string model_path = temp_path("cli_pipe_model.txt");
  const std::string hosts_path = temp_path("cli_pipe_hosts.csv");

  ASSERT_EQ(run({"synth", trace_path, "800", "11"}), kOk);
  std::string out;
  ASSERT_EQ(run({"fit", trace_path, model_path}, &out), kOk);
  EXPECT_NE(out.find("1:2 core ratio law"), std::string::npos);

  ASSERT_EQ(run({"generate", model_path, "2011-01-01", "200", hosts_path},
                &out),
            kOk);
  // Generated CSV: header + 200 rows.
  std::ifstream hosts(hosts_path);
  ASSERT_TRUE(hosts.good());
  std::string line;
  int lines = 0;
  while (std::getline(hosts, line)) ++lines;
  EXPECT_EQ(lines, 201);

  ASSERT_EQ(run({"predict", model_path, "2014"}, &out), kOk);
  EXPECT_NE(out.find("Mean cores"), std::string::npos);

  ASSERT_EQ(run({"validate", model_path, trace_path, "2009-06-01"}, &out),
            kOk);
  EXPECT_NE(out.find("mu actual"), std::string::npos);
}

TEST(Cli, GenerateRejectsBadModelFile) {
  const std::string bad_model = temp_path("cli_bad_model.txt");
  std::ofstream(bad_model) << "not a model\n";
  std::string err;
  EXPECT_EQ(run({"generate", bad_model, "2011-01-01", "10",
                 temp_path("unused.csv")},
                nullptr, &err),
            kFailure);
  EXPECT_FALSE(err.empty());
}

TEST(Cli, GenerateRejectsBadDate) {
  const std::string trace_path = temp_path("cli_gen.csv");
  const std::string model_path = temp_path("cli_gen_model.txt");
  ASSERT_EQ(run({"synth", trace_path, "500", "13"}), kOk);
  ASSERT_EQ(run({"fit", trace_path, model_path}), kOk);
  EXPECT_EQ(run({"generate", model_path, "June 2011", "10",
                 temp_path("unused2.csv")}),
            kFailure);
}

TEST(Cli, ValidateFailsOnEmptySnapshot) {
  const std::string trace_path = temp_path("cli_val.csv");
  const std::string model_path = temp_path("cli_val_model.txt");
  ASSERT_EQ(run({"synth", trace_path, "500", "17"}), kOk);
  ASSERT_EQ(run({"fit", trace_path, model_path}), kOk);
  std::string err;
  EXPECT_EQ(run({"validate", model_path, trace_path, "2030-01-01"}, nullptr,
                &err),
            kFailure);
  EXPECT_NE(err.find("no active hosts"), std::string::npos);
}

TEST(Cli, CollectWritesTrace) {
  const std::string path = temp_path("cli_collect.csv");
  std::string out;
  ASSERT_EQ(run({"collect", path, "150", "19"}, &out), kOk);
  EXPECT_NE(out.find("scheduler contacts"), std::string::npos);
  const trace::TraceStore store = trace::read_csv_file(path);
  EXPECT_GT(store.size(), 200u);
}

TEST(Cli, FitRejectsMissingTrace) {
  std::string err;
  EXPECT_EQ(run({"fit", "/no/such/file.csv", temp_path("m.txt")}, nullptr,
                &err),
            kFailure);
}

TEST(Cli, GenerateWithCorrelationModels) {
  const std::string trace_path = temp_path("cli_corr.csv");
  const std::string model_path = temp_path("cli_corr_model.txt");
  ASSERT_EQ(run({"synth", trace_path, "500", "23"}), kOk);
  ASSERT_EQ(run({"fit", trace_path, model_path}), kOk);

  std::string out;
  ASSERT_EQ(run({"generate", model_path, "2010-06-01", "100",
                 temp_path("cli_corr_chol.csv"), "--correlation=cholesky"},
                &out),
            kOk);
  EXPECT_NE(out.find("cholesky correlation"), std::string::npos);

  ASSERT_EQ(run({"generate", model_path, "2010-06-01", "100",
                 temp_path("cli_corr_ind.csv"),
                 "--correlation=independent"},
                &out),
            kOk);
  EXPECT_NE(out.find("independent correlation"), std::string::npos);

  ASSERT_EQ(run({"generate", model_path, "2010-06-01", "100",
                 temp_path("cli_corr_emp.csv"), "--correlation=empirical",
                 "--trace=" + trace_path},
                &out),
            kOk);
  EXPECT_NE(out.find("empirical correlation"), std::string::npos);

  // Extrapolation: the copula is fitted from the trace's own window even
  // when generating for a date years past its end.
  ASSERT_EQ(run({"generate", model_path, "2014-06-01", "100",
                 temp_path("cli_corr_emp_future.csv"),
                 "--correlation=empirical", "--trace=" + trace_path},
                &out),
            kOk);

  // Same flags work on validate, with an explicit out-of-sample fit source.
  ASSERT_EQ(run({"validate", model_path, trace_path, "2009-06-01",
                 "--correlation=empirical"},
                &out),
            kOk);
  EXPECT_NE(out.find("mu actual"), std::string::npos);
  ASSERT_EQ(run({"validate", model_path, trace_path, "2009-06-01",
                 "--correlation=empirical", "--trace=" + trace_path},
                &out),
            kOk);

  // --trace is rejected where it would be silently ignored.
  std::string err;
  EXPECT_EQ(run({"generate", model_path, "2010-06-01", "100",
                 temp_path("cli_corr_bad.csv"), "--correlation=cholesky",
                 "--trace=" + trace_path},
                nullptr, &err),
            kUsage);
  EXPECT_NE(err.find("--trace only applies"), std::string::npos);
  EXPECT_EQ(run({"validate", model_path, trace_path, "2009-06-01",
                 "--trace=" + trace_path},
                nullptr, &err),
            kUsage);
}

TEST(Cli, GenerateRejectsBadCorrelationFlag) {
  std::string err;
  EXPECT_EQ(run({"generate", "m.txt", "2010-06-01", "10", "h.csv",
                 "--correlation=copula"},
                nullptr, &err),
            kFailure);
  EXPECT_NE(err.find("bad --correlation"), std::string::npos);
  EXPECT_EQ(run({"generate", "m.txt", "2010-06-01", "10", "h.csv",
                 "--frobnicate"},
                nullptr, &err),
            kFailure);
}

TEST(Cli, GenerateEmpiricalNeedsTrace) {
  const std::string trace_path = temp_path("cli_emp.csv");
  const std::string model_path = temp_path("cli_emp_model.txt");
  ASSERT_EQ(run({"synth", trace_path, "500", "29"}), kOk);
  ASSERT_EQ(run({"fit", trace_path, model_path}), kOk);
  std::string err;
  EXPECT_EQ(run({"generate", model_path, "2010-06-01", "10",
                 temp_path("cli_emp_hosts.csv"), "--correlation=empirical"},
                nullptr, &err),
            kUsage);
  EXPECT_NE(err.find("--trace"), std::string::npos);
}

// --- pack / unpack / verify -------------------------------------------------

TEST(Cli, PackUnpackTraceRoundTripsWithMatchingDigests) {
  const std::string csv = temp_path("cli_pack_trace.csv");
  const std::string snap = temp_path("cli_pack_trace.snap");
  const std::string back = temp_path("cli_pack_trace_back.csv");
  ASSERT_EQ(run({"synth", csv, "400", "11"}), kOk);

  std::string pack_out;
  ASSERT_EQ(run({"pack", csv, snap, "--shard=97"}, &pack_out), kOk);
  EXPECT_NE(pack_out.find("column digests:"), std::string::npos);

  std::string verify_out;
  ASSERT_EQ(run({"verify", snap, "--digests"}, &verify_out), kOk);
  EXPECT_NE(verify_out.find("verify: OK"), std::string::npos);
  EXPECT_NE(verify_out.find("kind: trace.v1"), std::string::npos);

  std::string unpack_out;
  ASSERT_EQ(run({"unpack", snap, back}, &unpack_out), kOk);
  // pack and unpack print identical digest blocks — the bit-identity
  // proof scripts diff.
  const auto digest_block = [](const std::string& text) {
    return text.substr(text.find("column digests:"));
  };
  const std::string pack_digests = digest_block(pack_out);
  EXPECT_EQ(pack_digests.substr(0, pack_digests.find("unpacked")),
            digest_block(unpack_out).substr(
                0, digest_block(unpack_out).find("unpacked")));

  // And the CSV itself round-trips byte-for-byte.
  std::ifstream a(csv), b(back);
  std::stringstream sa, sb;
  sa << a.rdbuf();
  sb << b.rdbuf();
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Cli, PackGenerateThenDigestOnlyUnpack) {
  const std::string trace_path = temp_path("cli_packgen_trace.csv");
  const std::string model_path = temp_path("cli_packgen_model.txt");
  const std::string snap = temp_path("cli_packgen.snap");
  ASSERT_EQ(run({"synth", trace_path, "500", "13"}), kOk);
  ASSERT_EQ(run({"fit", trace_path, model_path}), kOk);

  std::string pack_out;
  ASSERT_EQ(run({"pack", "--generate", model_path, "2009-06-01", "5000", snap,
                 "--shard=1024", "--seed=21"},
                &pack_out),
            kOk);
  EXPECT_NE(pack_out.find("5000 generated hosts in 5 shard(s)"),
            std::string::npos);

  std::string unpack_out;
  ASSERT_EQ(run({"unpack", snap, "--digest-only"}, &unpack_out), kOk);
  EXPECT_NE(unpack_out.find("kind: population.v1"), std::string::npos);
  const std::string pack_digests =
      pack_out.substr(pack_out.find("column digests:"));
  EXPECT_NE(unpack_out.find(pack_digests), std::string::npos);

  // Same invocation -> bit-identical file -> identical digest lines.
  std::string again;
  ASSERT_EQ(run({"pack", "--generate", model_path, "2009-06-01", "5000", snap,
                 "--shard=1024", "--seed=21"},
                &again),
            kOk);
  EXPECT_EQ(again.substr(again.find("column digests:")), pack_digests);
}

TEST(Cli, UnpackPopulationCsvRePacksIdentically) {
  const std::string trace_path = temp_path("cli_popcsv_trace.csv");
  const std::string model_path = temp_path("cli_popcsv_model.txt");
  const std::string snap1 = temp_path("cli_popcsv_1.snap");
  const std::string csv = temp_path("cli_popcsv.csv");
  const std::string snap2 = temp_path("cli_popcsv_2.snap");
  ASSERT_EQ(run({"synth", trace_path, "500", "17"}), kOk);
  ASSERT_EQ(run({"fit", trace_path, model_path}), kOk);
  std::string first;
  ASSERT_EQ(run({"pack", "--generate", model_path, "2010-01-01", "2000", snap1,
                 "--shard=512"},
                &first),
            kOk);
  ASSERT_EQ(run({"unpack", snap1, csv}), kOk);
  // Text CSV -> snapshot again: doubles survive because both CSV writers
  // print with round-trip precision.
  std::string second;
  ASSERT_EQ(run({"pack", csv, snap2, "--shard=512"}, &second), kOk);
  EXPECT_EQ(first.substr(first.find("column digests:")),
            second.substr(second.find("column digests:")));
}

TEST(Cli, VerifyReportsDamageAndExitsNonzero) {
  const std::string csv = temp_path("cli_damage.csv");
  const std::string snap = temp_path("cli_damage.snap");
  ASSERT_EQ(run({"synth", csv, "300", "19"}), kOk);
  ASSERT_EQ(run({"pack", csv, snap, "--shard=64"}), kOk);
  // Flip one byte inside the block region (past the ~100-byte header).
  {
    std::fstream f(snap, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(600);
    char b;
    f.seekg(600);
    f.get(b);
    f.seekp(600);
    f.put(static_cast<char>(b ^ 0x40));
  }
  std::string out, err;
  EXPECT_EQ(run({"verify", snap}, &out, &err), kFailure);
  EXPECT_NE(out.find("lost block:"), std::string::npos);
  EXPECT_NE(err.find("verify: DAMAGED"), std::string::npos);

  // Strict unpack refuses; --recover loads the rest and reports.
  std::string serr;
  EXPECT_EQ(run({"unpack", snap, temp_path("cli_damage_strict.csv")}, nullptr,
                &serr),
            kFailure);
  EXPECT_NE(serr.find("store["), std::string::npos);
  std::string rout;
  EXPECT_EQ(run({"unpack", snap, temp_path("cli_damage_rec.csv"),
                 "--recover"},
                &rout),
            kFailure);
  EXPECT_NE(rout.find("lost block:"), std::string::npos);
}

TEST(Cli, StoreCommandsReportMissingAndMalformedInputsTyped) {
  std::string err;
  // Missing snapshot: typed cannot-open naming the path, exit 2.
  EXPECT_EQ(run({"verify", "/nonexistent/f.snap"}, nullptr, &err), kFailure);
  EXPECT_NE(err.find("cannot-open"), std::string::npos);
  EXPECT_NE(err.find("/nonexistent/f.snap"), std::string::npos);

  EXPECT_EQ(run({"unpack", "/nonexistent/f.snap"}, nullptr, &err), kFailure);

  // Missing csv input to pack.
  EXPECT_EQ(run({"pack", "/nonexistent/f.csv", temp_path("x.snap")}, nullptr,
                &err),
            kFailure);
  EXPECT_NE(err.find("/nonexistent/f.csv"), std::string::npos);

  // A csv that is neither trace nor population.
  const std::string weird = temp_path("cli_weird.csv");
  std::ofstream(weird) << "alpha,beta\n1,2\n";
  EXPECT_EQ(run({"pack", weird, temp_path("y.snap")}, nullptr, &err),
            kFailure);
  EXPECT_NE(err.find("neither a trace nor a population"), std::string::npos);

  // A trace csv with a corrupt row: CsvError with file:line reaches the
  // user and exits nonzero.
  const std::string corrupt = temp_path("cli_corrupt.csv");
  ASSERT_EQ(run({"synth", corrupt, "300", "23"}), kOk);
  {
    std::ofstream f(corrupt, std::ios::app);
    f << "1,2,3\n";
  }
  EXPECT_EQ(run({"pack", corrupt, temp_path("z.snap")}, nullptr, &err),
            kFailure);
  EXPECT_NE(err.find(corrupt + ":"), std::string::npos);
  EXPECT_NE(err.find("field count"), std::string::npos);

  // Usage errors for the new verbs.
  EXPECT_EQ(run({"pack"}, nullptr, &err), kUsage);
  EXPECT_EQ(run({"unpack"}, nullptr, &err), kUsage);
  EXPECT_EQ(run({"verify"}, nullptr, &err), kUsage);
  EXPECT_EQ(run({"verify", "a", "--frobnicate"}, nullptr, &err), kUsage);
}

// Drops the wall-clock "timing:" line, leaving serve's deterministic
// counter block — the same stripping the CI determinism gate applies.
std::string without_timing(const std::string& text) {
  std::istringstream in(text);
  std::string kept, line;
  while (std::getline(in, line)) {
    if (line.rfind("timing:", 0) == 0) continue;
    kept += line;
    kept += '\n';
  }
  return kept;
}

TEST(Cli, ServeRunsCohortAndReportsBalancedCounters) {
  std::string out;
  ASSERT_EQ(run({"serve", "--clients=400", "--days=5", "--shards=2",
                 "--seed=9"},
                &out),
            kOk);
  EXPECT_NE(out.find("serve: 400 clients"), std::string::npos);
  EXPECT_NE(out.find("contacts: "), std::string::npos);
  EXPECT_NE(out.find("unaccounted=0"), std::string::npos);
  EXPECT_NE(out.find("timing:"), std::string::npos);
  EXPECT_NE(out.find("requests/s"), std::string::npos);
}

TEST(Cli, ServeCountersAreShardInvariant) {
  std::string one, three;
  ASSERT_EQ(run({"serve", "--clients=300", "--days=4", "--shards=1",
                 "--seed=3", "--availability",
                 "--fault-mix=crash:0.2,corrupt:0.2"},
                &one),
            kOk);
  ASSERT_EQ(run({"serve", "--clients=300", "--days=4", "--shards=3",
                 "--seed=3", "--availability",
                 "--fault-mix=crash:0.2,corrupt:0.2"},
                &three),
            kOk);
  // Shard count appears in the banner; everything after it must match.
  const std::string a = without_timing(one);
  const std::string b = without_timing(three);
  EXPECT_EQ(a.substr(a.find('\n')), b.substr(b.find('\n')));
}

TEST(Cli, ServeReportsQuorumCounters) {
  std::string out;
  ASSERT_EQ(run({"serve", "--clients=200", "--days=6", "--shards=2",
                 "--replication=2/3", "--deadline-days=1.5",
                 "--fault-mix=corrupt:0.3"},
                &out),
            kOk);
  EXPECT_NE(out.find("quorum tasks: issued="), std::string::npos);
  EXPECT_NE(out.find("quorum replicas: issued="), std::string::npos);
}

TEST(Cli, ServeRejectsBadArgs) {
  std::string err;
  // Missing required arguments.
  EXPECT_EQ(run({"serve"}, nullptr, &err), kUsage);
  EXPECT_NE(err.find("--clients=N"), std::string::npos);
  EXPECT_EQ(run({"serve", "--clients=100"}, nullptr, &err), kUsage);
  EXPECT_EQ(run({"serve", "--days=7"}, nullptr, &err), kUsage);

  // Zero and negative counts are rejected everywhere a count is taken —
  // including the stoul-wraparound case ("-3" must not parse as huge).
  EXPECT_EQ(run({"serve", "--clients=0", "--days=7"}, nullptr, &err),
            kFailure);
  EXPECT_EQ(run({"serve", "--clients=-3", "--days=7"}, nullptr, &err),
            kFailure);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=7", "--shards=0"},
                nullptr, &err),
            kFailure);
  EXPECT_NE(err.find("--shards"), std::string::npos);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=7", "--shards=-1"},
                nullptr, &err),
            kFailure);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=0"}, nullptr, &err),
            kFailure);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=7", "--batch=0"},
                nullptr, &err),
            kFailure);

  // Policy flags that need each other or valid specs.
  EXPECT_EQ(run({"serve", "--clients=100", "--days=7", "--deadline-days=2"},
                nullptr, &err),
            kUsage);
  EXPECT_NE(err.find("--replication"), std::string::npos);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=7", "--replication=5/2"},
                nullptr, &err),
            kUsage);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=7",
                 "--fault-mix=crash:0.7,corrupt:0.7"},
                nullptr, &err),
            kFailure);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=7", "--frobnicate"},
                nullptr, &err),
            kUsage);
}

TEST(Cli, ServeResumeConflictsWithPopulationShapeFlags) {
  // --resume takes the whole run config from the checkpoint header;
  // every population-shape flag alongside it is a usage error that
  // names the offenders.
  std::string err;
  EXPECT_EQ(run({"serve", "--resume=x.snap", "--clients=100"}, nullptr,
                &err),
            kUsage);
  EXPECT_NE(err.find("--resume"), std::string::npos);
  EXPECT_NE(err.find("--clients"), std::string::npos);

  err.clear();
  EXPECT_EQ(run({"serve", "--resume=x.snap", "--days=7", "--seed=3",
                 "--fault-mix=crash:0.1"},
                nullptr, &err),
            kUsage);
  EXPECT_NE(err.find("--days"), std::string::npos);
  EXPECT_NE(err.find("--seed"), std::string::npos);
  EXPECT_NE(err.find("--fault-mix"), std::string::npos);

  err.clear();
  EXPECT_EQ(run({"serve", "--resume=x.snap", "--shards=4"}, nullptr, &err),
            kUsage);
  EXPECT_EQ(run({"serve", "--resume=x.snap", "--replication=2/3"}, nullptr,
                &err),
            kUsage);
  EXPECT_EQ(run({"serve", "--resume=x.snap", "--availability"}, nullptr,
                &err),
            kUsage);

  // --threads only sets the parallel grain — allowed with --resume (the
  // missing file is then a runtime failure, not a usage error).
  EXPECT_EQ(run({"serve", "--resume=" + temp_path("absent.snap"),
                 "--threads=2"},
                nullptr, &err),
            kFailure);
}

TEST(Cli, ServeCheckpointFlagValidation) {
  std::string err;
  EXPECT_EQ(run({"serve", "--clients=100", "--days=3",
                 "--checkpoint-every-days=2"},
                nullptr, &err),
            kUsage);
  EXPECT_NE(err.find("--checkpoint-every-days needs --checkpoint"),
            std::string::npos);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=3", "--checkpoint="},
                nullptr, &err),
            kUsage);
  EXPECT_EQ(run({"serve", "--resume="}, nullptr, &err), kUsage);
  // A fault plan without a checkpoint to write is a config error.
  EXPECT_EQ(run({"serve", "--clients=100", "--days=3",
                 "--checkpoint-fault=eio@1"},
                nullptr, &err),
            kUsage);
  // Malformed fault specs.
  EXPECT_EQ(run({"serve", "--clients=100", "--days=3",
                 "--checkpoint=" + temp_path("cf.snap"),
                 "--checkpoint-fault=eio"},
                nullptr, &err),
            kFailure);
  EXPECT_EQ(run({"serve", "--clients=100", "--days=3",
                 "--checkpoint=" + temp_path("cf.snap"),
                 "--checkpoint-fault=frobnicate@1"},
                nullptr, &err),
            kFailure);
}

TEST(Cli, ServeCheckpointKillResumeRoundTrip) {
  const std::vector<std::string> shape = {
      "--clients=300",  "--days=8", "--shards=3", "--seed=17",
      "--availability", "--fault-mix=crash:0.1,straggler:0.1"};

  std::vector<std::string> full = {"serve"};
  full.insert(full.end(), shape.begin(), shape.end());
  std::string uninterrupted;
  ASSERT_EQ(run(full, &uninterrupted), kOk);

  const std::string ck = temp_path("cli_roundtrip.snap");
  std::vector<std::string> killed = full;
  killed.push_back("--checkpoint=" + ck);
  killed.push_back("--checkpoint-every-days=3");
  killed.push_back("--stop-after-day=4");
  std::string halted;
  ASSERT_EQ(run(killed, &halted), kOk);
  EXPECT_NE(halted.find("halted: after day 4"), std::string::npos);
  EXPECT_EQ(halted.find("contacts:"), std::string::npos);

  std::string resumed;
  ASSERT_EQ(run({"serve", "--resume=" + ck}, &resumed), kOk);
  // The resumed run's deterministic block is byte-identical to the
  // uninterrupted run's — banner (clients/days/shards) included.
  EXPECT_EQ(without_timing(resumed), without_timing(uninterrupted));
}

TEST(Cli, ServeCheckpointFaultKillsRunButKeepsPublishedEpoch) {
  const std::vector<std::string> shape = {"--clients=250", "--days=8",
                                          "--seed=5", "--replication=2/3",
                                          "--fault-mix=corrupt:0.2"};
  std::vector<std::string> full = {"serve"};
  full.insert(full.end(), shape.begin(), shape.end());
  std::string uninterrupted;
  ASSERT_EQ(run(full, &uninterrupted), kOk);

  const std::string ck = temp_path("cli_faulted.snap");
  std::vector<std::string> faulted = full;
  faulted.push_back("--checkpoint=" + ck);
  faulted.push_back("--checkpoint-every-days=2");
  faulted.push_back("--checkpoint-fault=crash-commit@2");
  std::string out, err;
  EXPECT_EQ(run(faulted, &out, &err), kFailure);
  EXPECT_NE(err.find("serve: store["), std::string::npos);

  // Epoch 1 survived the injected death of epoch 2's commit: resume from
  // it and land on the uninterrupted run's exact counters.
  std::string resumed;
  ASSERT_EQ(run({"serve", "--resume=" + ck}, &resumed), kOk);
  EXPECT_EQ(without_timing(resumed), without_timing(uninterrupted));
}

TEST(Cli, PackRejectsExplicitZeroShard) {
  const std::string trace_path = temp_path("cli_shard0.csv");
  ASSERT_EQ(run({"synth", trace_path, "200", "7"}), kOk);
  std::string err;
  EXPECT_EQ(run({"pack", trace_path, temp_path("cli_shard0.snap"),
                 "--shard=0"},
                nullptr, &err),
            kFailure);
  EXPECT_NE(err.find("--shard"), std::string::npos);
  EXPECT_EQ(run({"pack", trace_path, temp_path("cli_shard0.snap"),
                 "--shard=-5"},
                nullptr, &err),
            kFailure);
}

}  // namespace
}  // namespace resmodel::cli

#include "stats/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/correlation.h"
#include "util/rng.h"

namespace resmodel::stats {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix i = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(a.multiply(i).max_abs_diff(a), 0.0);
  EXPECT_DOUBLE_EQ(i.multiply(a).max_abs_diff(a), 0.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(Matrix, TransposeSwapsIndices) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Cholesky, ReconstructsPaperMatrix) {
  // The R matrix from §V-F of the paper.
  const Matrix r = Matrix::from_rows({
      {1.0, 0.250, 0.306},
      {0.250, 1.0, 0.639},
      {0.306, 0.639, 1.0},
  });
  const auto l = cholesky(r);
  ASSERT_TRUE(l.has_value());
  const Matrix reconstructed = l->multiply(l->transpose());
  EXPECT_LT(reconstructed.max_abs_diff(r), 1e-12);
}

TEST(Cholesky, MatchesPaperPrintedFactor) {
  // The paper prints U with rows (1,0,0), (0.250,0.968,0),
  // (0.306,0.581,0.754) — our lower factor transposed row order.
  const Matrix r = Matrix::from_rows({
      {1.0, 0.250, 0.306},
      {0.250, 1.0, 0.639},
      {0.306, 0.639, 1.0},
  });
  const auto l = cholesky(r);
  ASSERT_TRUE(l.has_value());
  EXPECT_NEAR((*l)(0, 0), 1.0, 1e-3);
  EXPECT_NEAR((*l)(1, 0), 0.250, 1e-3);
  EXPECT_NEAR((*l)(1, 1), 0.968, 1e-3);
  EXPECT_NEAR((*l)(2, 0), 0.306, 1e-3);
  EXPECT_NEAR((*l)(2, 1), 0.581, 1e-3);
  EXPECT_NEAR((*l)(2, 2), 0.754, 1e-3);
}

TEST(Cholesky, LowerTriangularOutput) {
  const Matrix r = Matrix::from_rows({{4.0, 2.0}, {2.0, 3.0}});
  const auto l = cholesky(r);
  ASSERT_TRUE(l.has_value());
  EXPECT_DOUBLE_EQ((*l)(0, 1), 0.0);
}

TEST(Cholesky, RejectsNonPositiveDefinite) {
  const Matrix bad = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});
  EXPECT_FALSE(cholesky(bad).has_value());
}

TEST(Cholesky, RejectsAsymmetric) {
  const Matrix bad = Matrix::from_rows({{1.0, 0.5}, {0.2, 1.0}});
  EXPECT_FALSE(cholesky(bad).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_FALSE(cholesky(Matrix(2, 3)).has_value());
}

TEST(CorrelatedNormals, AchievesTargetCorrelations) {
  const Matrix r = Matrix::from_rows({
      {1.0, 0.250, 0.306},
      {0.250, 1.0, 0.639},
      {0.306, 0.639, 1.0},
  });
  const auto l = cholesky(r);
  ASSERT_TRUE(l.has_value());
  util::Rng rng(42);
  constexpr int kN = 100000;
  std::vector<double> a(kN), b(kN), c(kN);
  for (int i = 0; i < kN; ++i) {
    const std::vector<double> v = correlated_normals(rng, *l);
    a[static_cast<std::size_t>(i)] = v[0];
    b[static_cast<std::size_t>(i)] = v[1];
    c[static_cast<std::size_t>(i)] = v[2];
  }
  EXPECT_NEAR(pearson(a, b), 0.250, 0.015);
  EXPECT_NEAR(pearson(a, c), 0.306, 0.015);
  EXPECT_NEAR(pearson(b, c), 0.639, 0.01);
}

TEST(CorrelatedNormals, MarginalsAreStandardNormal) {
  const auto l = cholesky(Matrix::from_rows({{1.0, 0.6}, {0.6, 1.0}}));
  ASSERT_TRUE(l.has_value());
  util::Rng rng(7);
  constexpr int kN = 100000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const std::vector<double> v = correlated_normals(rng, *l);
    sum += v[1];
    sum2 += v[1] * v[1];
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.015);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.02);
}

}  // namespace
}  // namespace resmodel::stats

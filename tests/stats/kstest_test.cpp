#include "stats/kstest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.h"
#include "util/rng.h"

namespace resmodel::stats {
namespace {

std::vector<double> draw(const Distribution& dist, int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(KsStatistic, ZeroishForPerfectQuantiles) {
  // Plugging exact quantiles of the model minimizes D (~1/2n).
  const NormalDist d(0.0, 1.0);
  std::vector<double> xs;
  const int n = 100;
  for (int i = 1; i <= n; ++i) {
    xs.push_back(d.quantile((i - 0.5) / n));
  }
  const double stat = ks_statistic(xs, [&d](double x) { return d.cdf(x); });
  EXPECT_LT(stat, 1.0 / n + 1e-12);
}

TEST(KsStatistic, OneForTotallyWrongModel) {
  // All mass far left of the data.
  const NormalDist d(-1e6, 1.0);
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const double stat = ks_statistic(xs, [&d](double x) { return d.cdf(x); });
  EXPECT_NEAR(stat, 1.0, 1e-9);
}

TEST(KsStatistic, ThrowsOnEmptySample) {
  EXPECT_THROW(ks_statistic({}, [](double) { return 0.5; }),
               std::invalid_argument);
}

TEST(KsStatistic, UnsortedInputHandled) {
  const NormalDist d(0.0, 1.0);
  const std::vector<double> sorted = {-1.0, 0.0, 1.0};
  const std::vector<double> shuffled = {1.0, -1.0, 0.0};
  const auto cdf = [&d](double x) { return d.cdf(x); };
  EXPECT_DOUBLE_EQ(ks_statistic(sorted, cdf), ks_statistic(shuffled, cdf));
}

TEST(KsPValue, LargeStatisticGivesTinyP) {
  EXPECT_LT(ks_p_value(0.5, 1000), 1e-10);
}

TEST(KsPValue, SmallStatisticGivesLargeP) {
  EXPECT_GT(ks_p_value(0.01, 50), 0.9);
}

TEST(KsPValue, MonotoneInStatistic) {
  double prev = 1.1;
  for (double d = 0.01; d < 0.5; d += 0.02) {
    const double p = ks_p_value(d, 100);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(KsPValue, BoundedInUnitInterval) {
  for (double d : {0.0, 0.1, 0.5, 0.9, 1.5}) {
    const double p = ks_p_value(d, 100);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(KsTest, CorrectModelGetsHighP) {
  const NormalDist d(10.0, 2.0);
  const KsResult r = ks_test(draw(d, 50, 1), d);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, WrongModelGetsLowP) {
  const NormalDist truth(10.0, 2.0);
  const NormalDist wrong(20.0, 2.0);
  const KsResult r = ks_test(draw(truth, 200, 2), wrong);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, PValuesApproximatelyUniformUnderNull) {
  // Under the null hypothesis p-values should be ~Uniform(0,1); check the
  // mean is near 0.5 across repetitions.
  const NormalDist d(0.0, 1.0);
  double sum = 0.0;
  constexpr int kReps = 200;
  for (int rep = 0; rep < kReps; ++rep) {
    sum += ks_test(draw(d, 50, 100 + rep), d).p_value;
  }
  EXPECT_NEAR(sum / kReps, 0.5, 0.08);
}

TEST(SubsampledKs, LargeSampleOfCorrectModelKeepsModerateP) {
  // This is the paper's entire point: a raw KS test on 100k samples
  // rejects tiny deviations, the subsampled test does not.
  const NormalDist d(2056.0, 1046.0);
  util::Rng rng(3);
  const std::vector<double> xs = draw(d, 100000, 4);
  const double p = subsampled_ks_p_value(xs, d, 100, 50, rng);
  EXPECT_GT(p, 0.3);
  EXPECT_LE(p, 1.0);
}

TEST(SubsampledKs, SlightlyContaminatedDataStillAcceptable) {
  // Mix 95% normal with 5% of a shifted spike: full-sample KS would
  // reject decisively; the averaged subsample p-value stays well above it.
  const NormalDist d(0.0, 1.0);
  util::Rng rng(5);
  std::vector<double> xs = draw(d, 95000, 6);
  for (int i = 0; i < 5000; ++i) xs.push_back(0.5);
  util::Rng sub_rng(7);
  const double p_sub = subsampled_ks_p_value(xs, d, 100, 50, sub_rng);
  const double p_full = ks_test(xs, d).p_value;
  EXPECT_GT(p_sub, p_full);
  EXPECT_GT(p_sub, 0.05);
}

TEST(SubsampledKs, FallsBackToFullSampleWhenSmall) {
  const NormalDist d(0.0, 1.0);
  const std::vector<double> xs = draw(d, 30, 8);
  util::Rng rng(9);
  const double p = subsampled_ks_p_value(xs, d, 100, 50, rng);
  EXPECT_DOUBLE_EQ(p, ks_test(xs, d).p_value);
}

TEST(SubsampledKs, ThrowsOnEmpty) {
  const NormalDist d(0.0, 1.0);
  util::Rng rng(10);
  EXPECT_THROW(subsampled_ks_p_value({}, d, 10, 5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::stats

#include "stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace resmodel::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-12);
}

TEST(NormalCdf, SymmetryAroundZero) {
  for (double x : {0.1, 0.7, 1.3, 2.9, 4.5}) {
    EXPECT_NEAR(normal_cdf(x) + normal_cdf(-x), 1.0, 1e-14);
  }
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-12) << "p=" << p;
  }
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(normal_quantile(0.8413447460685429), 1.0, 1e-9);
}

TEST(NormalQuantile, BoundaryAndInvalidInputs) {
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(normal_quantile(-0.1)));
  EXPECT_TRUE(std::isnan(normal_quantile(1.1)));
  EXPECT_TRUE(std::isnan(normal_quantile(std::nan(""))));
}

TEST(GammaP, BoundaryValues) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(gamma_p(2.0, 1e6), 1.0, 1e-12);
}

TEST(GammaP, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaP, KnownValue) {
  // P(3, 3) = 1 - e^-3 (1 + 3 + 9/2).
  EXPECT_NEAR(gamma_p(3.0, 3.0), 1.0 - std::exp(-3.0) * (1 + 3 + 4.5), 1e-12);
}

TEST(GammaP, ComplementsGammaQ) {
  for (double a : {0.5, 1.0, 2.7, 10.0}) {
    for (double x : {0.3, 1.0, 4.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(GammaP, InvalidInputsAreNan) {
  EXPECT_TRUE(std::isnan(gamma_p(-1.0, 1.0)));
  EXPECT_TRUE(std::isnan(gamma_p(1.0, -1.0)));
}

TEST(GammaPInverse, InvertsGammaP) {
  for (double a : {0.5, 1.0, 2.0, 5.0, 20.0}) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99}) {
      const double x = gamma_p_inverse(a, p);
      EXPECT_NEAR(gamma_p(a, x), p, 1e-9) << "a=" << a << " p=" << p;
    }
  }
}

TEST(GammaPInverse, Boundaries) {
  EXPECT_DOUBLE_EQ(gamma_p_inverse(2.0, 0.0), 0.0);
  EXPECT_EQ(gamma_p_inverse(2.0, 1.0),
            std::numeric_limits<double>::infinity());
}

TEST(Digamma, KnownValues) {
  constexpr double kEulerMascheroni = 0.5772156649015329;
  EXPECT_NEAR(digamma(1.0), -kEulerMascheroni, 1e-10);
  EXPECT_NEAR(digamma(2.0), 1.0 - kEulerMascheroni, 1e-10);
  EXPECT_NEAR(digamma(0.5), -kEulerMascheroni - 2.0 * std::log(2.0), 1e-10);
}

TEST(Digamma, RecurrenceHolds) {
  // psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 5.5, 20.0}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
  }
}

TEST(Trigamma, KnownValue) {
  EXPECT_NEAR(trigamma(1.0), 1.6449340668482264, 1e-9);  // pi^2/6
}

TEST(Trigamma, RecurrenceHolds) {
  for (double x : {0.4, 2.3, 7.0}) {
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-10);
  }
}

TEST(Trigamma, MatchesDigammaDerivative) {
  const double h = 1e-5;
  for (double x : {1.5, 4.0, 12.0}) {
    const double numeric = (digamma(x + h) - digamma(x - h)) / (2 * h);
    EXPECT_NEAR(trigamma(x), numeric, 1e-5);
  }
}

}  // namespace
}  // namespace resmodel::stats

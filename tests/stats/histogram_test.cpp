#include "stats/histogram.h"

#include <gtest/gtest.h>

#include <numeric>

namespace resmodel::stats {
namespace {

TEST(Histogram, EqualWidthBinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi edge is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, ExplicitEdges) {
  Histogram h(std::vector<double>{0.0, 1.0, 10.0, 100.0});
  h.add(0.5);
  h.add(5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 10.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram(std::vector<double>{2.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h(0.0, 1.0, 4);
  for (double x : {0.1, 0.3, 0.6, 0.9, 0.95}) h.add(x);
  const std::vector<double> f = h.fractions();
  EXPECT_NEAR(std::accumulate(f.begin(), f.end(), 0.0), 1.0, 1e-12);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(std::vector<double>{0.0, 0.5, 2.0});
  for (double x : {0.1, 0.2, 1.0, 1.5}) h.add(x);
  const std::vector<double> d = h.density();
  double integral = 0.0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    integral += d[i] * (h.bin_hi(i) - h.bin_lo(i));
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, CumulativeEndsAtOne) {
  Histogram h(0.0, 1.0, 3);
  for (double x : {0.1, 0.5, 0.9}) h.add(x);
  const std::vector<double> c = h.cumulative();
  EXPECT_NEAR(c.back(), 1.0, 1e-12);
  for (std::size_t i = 1; i < c.size(); ++i) EXPECT_GE(c[i], c[i - 1]);
}

TEST(Histogram, EmptyFractionsAreZero) {
  Histogram h(0.0, 1.0, 3);
  for (double f : h.fractions()) EXPECT_DOUBLE_EQ(f, 0.0);
}

TEST(Histogram, BinCenter) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(4), 9.0);
}

TEST(EmpiricalCdf, SortedPairsReachOne) {
  const auto cdf = empirical_cdf(std::vector<double>{3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].first, 3.0);
  EXPECT_NEAR(cdf[0].second, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].second, 1.0);
}

TEST(EmpiricalCdf, EmptyInput) {
  EXPECT_TRUE(empirical_cdf({}).empty());
}

}  // namespace
}  // namespace resmodel::stats

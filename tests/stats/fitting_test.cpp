// MLE recovery tests: sample from a known distribution and verify the
// fitter recovers its parameters, plus the paper's subsampled-KS model
// selection picking the true family.
#include "stats/fitting.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace resmodel::stats {
namespace {

std::vector<double> draw(const Distribution& dist, int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(FitNormal, RecoversParameters) {
  const NormalDist truth(2056.0, 1046.0);
  const auto fit = fit_normal(draw(truth, 50000, 1));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->mean(), 2056.0, 15.0);
  EXPECT_NEAR(fit->sigma(), 1046.0, 15.0);
}

TEST(FitNormal, RejectsDegenerateInput) {
  EXPECT_FALSE(fit_normal(std::vector<double>{}).has_value());
  EXPECT_FALSE(fit_normal(std::vector<double>{1.0}).has_value());
  EXPECT_FALSE(fit_normal(std::vector<double>{3.0, 3.0, 3.0}).has_value());
}

TEST(FitLogNormal, RecoversParameters) {
  const LogNormalDist truth(3.2, 0.8);
  const auto fit = fit_lognormal(draw(truth, 50000, 2));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->mu(), 3.2, 0.02);
  EXPECT_NEAR(fit->sigma(), 0.8, 0.02);
}

TEST(FitLogNormal, RejectsNonPositiveValues) {
  EXPECT_FALSE(fit_lognormal(std::vector<double>{1.0, -2.0, 3.0}).has_value());
  EXPECT_FALSE(fit_lognormal(std::vector<double>{0.0, 1.0}).has_value());
}

TEST(FitExponential, RecoversRate) {
  const ExponentialDist truth(0.4);
  const auto fit = fit_exponential(draw(truth, 50000, 3));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->lambda(), 0.4, 0.01);
}

TEST(FitExponential, RejectsNegativeValues) {
  EXPECT_FALSE(fit_exponential(std::vector<double>{1.0, -0.5}).has_value());
}

TEST(FitWeibull, RecoversPaperLifetimeParameters) {
  const WeibullDist truth(0.58, 135.0);
  const auto fit = fit_weibull(draw(truth, 50000, 4));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->k(), 0.58, 0.01);
  EXPECT_NEAR(fit->lambda(), 135.0, 3.0);
}

TEST(FitWeibull, RecoversLargeShape) {
  const WeibullDist truth(3.5, 7.0);
  const auto fit = fit_weibull(draw(truth, 50000, 5));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->k(), 3.5, 0.06);
  EXPECT_NEAR(fit->lambda(), 7.0, 0.05);
}

TEST(FitPareto, RecoversParameters) {
  const ParetoDist truth(2.5, 3.0);
  const auto fit = fit_pareto(draw(truth, 50000, 6));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->alpha(), 2.5, 0.05);
  EXPECT_NEAR(fit->xm(), 3.0, 0.01);
}

TEST(FitPareto, RejectsConstantData) {
  EXPECT_FALSE(fit_pareto(std::vector<double>{2.0, 2.0, 2.0}).has_value());
}

TEST(FitGamma, RecoversParameters) {
  const GammaDist truth(2.7, 1.8);
  const auto fit = fit_gamma(draw(truth, 80000, 7));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->k(), 2.7, 0.05);
  EXPECT_NEAR(fit->theta(), 1.8, 0.04);
}

TEST(FitGamma, SmallShape) {
  const GammaDist truth(0.6, 4.0);
  const auto fit = fit_gamma(draw(truth, 80000, 8));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->k(), 0.6, 0.02);
  EXPECT_NEAR(fit->theta(), 4.0, 0.15);
}

TEST(FitLogGamma, RecoversParameters) {
  const LogGammaDist truth(3.0, 0.2);
  const auto fit = fit_loggamma(draw(truth, 80000, 9));
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->k(), 3.0, 0.06);
  EXPECT_NEAR(fit->theta(), 0.2, 0.01);
}

TEST(FitLogGamma, RejectsValuesAtOrBelowOne) {
  EXPECT_FALSE(fit_loggamma(std::vector<double>{0.5, 2.0}).has_value());
  EXPECT_FALSE(fit_loggamma(std::vector<double>{1.0, 2.0}).has_value());
}

TEST(FitFamily, DispatchesToEveryFamily) {
  const NormalDist source(10.0, 2.0);
  const std::vector<double> xs = draw(source, 2000, 10);
  // Normal data is positive enough here that most families fit; each
  // returned distribution must carry the right name.
  for (Family f : all_families()) {
    const auto dist = fit_family(f, xs);
    if (dist) {
      EXPECT_EQ(dist->name(), family_name(f));
    }
  }
}

TEST(FamilyName, CoversAllFamilies) {
  EXPECT_EQ(all_families().size(), 7u);
  for (Family f : all_families()) {
    EXPECT_FALSE(family_name(f).empty());
    EXPECT_NE(family_name(f), "unknown");
  }
}

// The paper's headline model-selection claims, §V-F and §V-G.
class SelectionRecovery
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST(Selection, NormalDataSelectsNormal) {
  const NormalDist truth(2715.0, 1450.0);
  const auto results = select_best_distribution(draw(truth, 20000, 11));
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(family_name(results.front().family), "normal");
  EXPECT_GT(results.front().avg_p_value, 0.1);
}

TEST(Selection, LogNormalDiskDataSelectsLogNormal) {
  // The paper's 2010 disk snapshot: mean 98.13 GB, stddev 157.8 GB.
  const auto truth = LogNormalDist::from_moments(98.13, 157.8 * 157.8);
  const auto results = select_best_distribution(draw(truth, 20000, 12));
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(family_name(results.front().family), "log-normal");
  EXPECT_GT(results.front().avg_p_value, 0.1);
}

TEST(Selection, WeibullLifetimesSelectWeibull) {
  const WeibullDist truth(0.58, 135.0);
  const auto results = select_best_distribution(draw(truth, 20000, 13));
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(family_name(results.front().family), "weibull");
}

TEST(Selection, ResultsSortedByPValue) {
  const NormalDist truth(100.0, 10.0);
  const auto results = select_best_distribution(draw(truth, 5000, 14));
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].avg_p_value, results[i].avg_p_value);
  }
}

TEST(Selection, DeterministicForFixedSeed) {
  const NormalDist truth(50.0, 5.0);
  const std::vector<double> xs = draw(truth, 5000, 15);
  const auto a = select_best_distribution(xs);
  const auto b = select_best_distribution(xs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_DOUBLE_EQ(a[i].avg_p_value, b[i].avg_p_value);
  }
}

}  // namespace
}  // namespace resmodel::stats

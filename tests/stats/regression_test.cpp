#include "stats/regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace resmodel::stats {
namespace {

TEST(Ols, ExactLineRecovered) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};  // y = 2x + 1
  const LinearFit fit = ols(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r, 1.0, 1e-12);
}

TEST(Ols, NegativeSlopeGivesNegativeR) {
  const std::vector<double> x = {0, 1, 2};
  const std::vector<double> y = {4, 2, 0};
  const LinearFit fit = ols(x, y);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.r, -1.0, 1e-12);
}

TEST(Ols, NoisyDataApproximatesTruth) {
  util::Rng rng(1);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    const double xi = i / 100.0;
    x.push_back(xi);
    y.push_back(3.0 * xi - 5.0 + rng.normal(0.0, 0.5));
  }
  const LinearFit fit = ols(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_NEAR(fit.intercept, -5.0, 0.1);
  EXPECT_GT(fit.r, 0.99);
}

TEST(Ols, RejectsBadInputs) {
  EXPECT_THROW(ols(std::vector<double>{1}, std::vector<double>{1}),
               std::invalid_argument);
  EXPECT_THROW(ols(std::vector<double>{1, 2}, std::vector<double>{1}),
               std::invalid_argument);
  EXPECT_THROW(ols(std::vector<double>{2, 2}, std::vector<double>{1, 3}),
               std::invalid_argument);
}

TEST(ExponentialLaw, EvaluatesPaperCoreRatioLaw) {
  // Table IV: 1:2 core ratio a=3.369, b=-0.5004. At 2006 (t=0) the ratio
  // of 1-core to 2-core hosts is ~3.37:1; §V-D says "by 2010 the ratio
  // inverted to 1 to 2.5".
  const ExponentialLaw law{3.369, -0.5004, -0.9984};
  EXPECT_NEAR(law(0.0), 3.369, 1e-12);
  EXPECT_NEAR(1.0 / law(4.0), 2.5, 0.35);
}

TEST(ExponentialLaw, FitRecoversExactLaw) {
  const ExponentialLaw truth{17.49, -0.3217, 0.0};
  std::vector<double> t, y;
  for (int i = 0; i <= 16; ++i) {
    t.push_back(i / 4.0);
    y.push_back(truth(i / 4.0));
  }
  const ExponentialLaw fit = ExponentialLaw::fit(t, y);
  EXPECT_NEAR(fit.a, truth.a, 1e-9);
  EXPECT_NEAR(fit.b, truth.b, 1e-12);
  EXPECT_NEAR(fit.r, -1.0, 1e-12);
}

TEST(ExponentialLaw, FitWithMultiplicativeNoise) {
  util::Rng rng(2);
  const ExponentialLaw truth{2064.0, 0.1709, 0.0};
  std::vector<double> t, y;
  for (int i = 0; i <= 100; ++i) {
    const double ti = i * 0.04;
    t.push_back(ti);
    y.push_back(truth(ti) * std::exp(rng.normal(0.0, 0.02)));
  }
  const ExponentialLaw fit = ExponentialLaw::fit(t, y);
  EXPECT_NEAR(fit.a, truth.a, 40.0);
  EXPECT_NEAR(fit.b, truth.b, 0.01);
  EXPECT_GT(fit.r, 0.99);
}

TEST(ExponentialLaw, FitRejectsNonPositiveY) {
  EXPECT_THROW(ExponentialLaw::fit(std::vector<double>{0, 1},
                                   std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ExponentialLaw::fit(std::vector<double>{0, 1},
                                   std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

TEST(ExponentialLaw, FitRejectsSizeMismatch) {
  EXPECT_THROW(ExponentialLaw::fit(std::vector<double>{0, 1},
                                   std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(ExponentialLaw, RSignMatchesTrend) {
  // Decaying ratio laws in the paper report negative r (Tables IV, V);
  // growing moment laws report positive r (Table VI).
  std::vector<double> t = {0, 1, 2, 3, 4};
  std::vector<double> decay, growth;
  for (double ti : t) {
    decay.push_back(3.369 * std::exp(-0.5 * ti));
    growth.push_back(31.59 * std::exp(0.2691 * ti));
  }
  EXPECT_LT(ExponentialLaw::fit(t, decay).r, -0.99);
  EXPECT_GT(ExponentialLaw::fit(t, growth).r, 0.99);
}

}  // namespace
}  // namespace resmodel::stats

#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "util/rng.h"

namespace resmodel::stats {
namespace {

TEST(Bootstrap, RejectsBadArguments) {
  util::Rng rng(1);
  const auto stat = [](std::span<const double> xs) { return mean(xs); };
  EXPECT_THROW(bootstrap_ci({}, stat, 100, 0.95, rng),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_ci(std::vector<double>{1.0}, stat, 1, 0.95, rng),
               std::invalid_argument);
  EXPECT_THROW(bootstrap_ci(std::vector<double>{1.0}, stat, 100, 1.5, rng),
               std::invalid_argument);
}

TEST(Bootstrap, MeanIntervalCoversTruth) {
  const NormalDist d(50.0, 10.0);
  util::Rng rng(2);
  std::vector<double> xs(2000);
  for (double& x : xs) x = d.sample(rng);
  const auto ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, 400, 0.95, rng);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 50.0);
  EXPECT_GT(ci.hi, 50.0);
  // Width ~ 2 * 1.96 * sigma/sqrt(n) ~ 0.88.
  EXPECT_NEAR(ci.hi - ci.lo, 0.88, 0.3);
}

TEST(Bootstrap, WidthShrinksWithSampleSize) {
  const NormalDist d(0.0, 1.0);
  util::Rng rng(3);
  std::vector<double> small(200), large(20000);
  for (double& x : small) x = d.sample(rng);
  for (double& x : large) x = d.sample(rng);
  const auto stat = [](std::span<const double> s) { return mean(s); };
  const auto ci_small = bootstrap_ci(small, stat, 300, 0.95, rng);
  const auto ci_large = bootstrap_ci(large, stat, 300, 0.95, rng);
  EXPECT_GT(ci_small.hi - ci_small.lo, 3.0 * (ci_large.hi - ci_large.lo));
}

TEST(Bootstrap, PointEqualsStatisticOnOriginal) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  util::Rng rng(4);
  const auto ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, 50, 0.9, rng);
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
}

TEST(BootstrapPaired, CorrelationIntervalCoversTruth) {
  util::Rng rng(5);
  std::vector<double> xs(3000), ys(3000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = 0.6 * xs[i] + 0.8 * rng.normal();  // r = 0.6
  }
  const auto ci = bootstrap_ci_paired(
      xs, ys,
      [](std::span<const double> a, std::span<const double> b) {
        return pearson(a, b);
      },
      300, 0.95, rng);
  EXPECT_LT(ci.lo, 0.6);
  EXPECT_GT(ci.hi, 0.6);
  EXPECT_LT(ci.hi - ci.lo, 0.15);
}

TEST(BootstrapPaired, RejectsSizeMismatch) {
  util::Rng rng(6);
  EXPECT_THROW(bootstrap_ci_paired(
                   std::vector<double>{1, 2}, std::vector<double>{1},
                   [](std::span<const double>, std::span<const double>) {
                     return 0.0;
                   },
                   10, 0.9, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::stats

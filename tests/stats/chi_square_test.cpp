#include "stats/chi_square.h"

#include <gtest/gtest.h>

#include "core/model_params.h"
#include "util/rng.h"

namespace resmodel::stats {
namespace {

TEST(ChiSquarePValue, KnownValues) {
  // chi2 with 1 df: P(X > 3.841) = 0.05.
  EXPECT_NEAR(chi_square_p_value(3.841, 1), 0.05, 0.001);
  // chi2 with 4 df: P(X > 9.488) = 0.05.
  EXPECT_NEAR(chi_square_p_value(9.488, 4), 0.05, 0.001);
  EXPECT_DOUBLE_EQ(chi_square_p_value(0.0, 3), 1.0);
  EXPECT_DOUBLE_EQ(chi_square_p_value(5.0, 0), 1.0);
}

TEST(ChiSquareTest, RejectsBadInputs) {
  EXPECT_THROW(chi_square_test({}, {}), std::invalid_argument);
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{1, 2},
                               std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{1, 2},
                               std::vector<double>{0.5, -0.5}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{0, 0},
                               std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
}

TEST(ChiSquareTest, PerfectMatchGivesHighP) {
  const std::vector<std::uint64_t> observed = {500, 300, 200};
  const std::vector<double> probs = {0.5, 0.3, 0.2};
  const ChiSquareResult r = chi_square_test(observed, probs);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_EQ(r.degrees_of_freedom, 2);
}

TEST(ChiSquareTest, GrossMismatchGivesTinyP) {
  const std::vector<std::uint64_t> observed = {900, 50, 50};
  const std::vector<double> probs = {0.2, 0.4, 0.4};
  const ChiSquareResult r = chi_square_test(observed, probs);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquareTest, UnnormalizedProbsAccepted) {
  // Probabilities given as weights.
  const std::vector<std::uint64_t> observed = {500, 500};
  const ChiSquareResult a =
      chi_square_test(observed, std::vector<double>{1.0, 1.0});
  const ChiSquareResult b =
      chi_square_test(observed, std::vector<double>{0.5, 0.5});
  EXPECT_DOUBLE_EQ(a.statistic, b.statistic);
}

TEST(ChiSquareTest, SparseCategoriesArePooled) {
  // Last category expects 0.1 counts; pooling must keep df sane.
  const std::vector<std::uint64_t> observed = {99, 1, 0};
  const std::vector<double> probs = {0.989, 0.01, 0.001};
  const ChiSquareResult r = chi_square_test(observed, probs);
  EXPECT_GE(r.degrees_of_freedom, 0);
  EXPECT_LE(r.degrees_of_freedom, 2);
  EXPECT_GE(r.p_value, 0.0);
  EXPECT_LE(r.p_value, 1.0);
}

TEST(ChiSquareTest, SampledModelCompositionPasses) {
  // Sample core counts from the paper pmf and test against that pmf —
  // should not reject.
  const core::ModelParams p = core::paper_params();
  const double t = 4.0;
  const std::vector<double> pmf = p.cores.pmf(t);
  util::Rng rng(1);
  std::vector<std::uint64_t> counts(pmf.size(), 0);
  for (int i = 0; i < 50000; ++i) {
    const double v = p.cores.quantile(t, rng.uniform());
    for (std::size_t j = 0; j < p.cores.values.size(); ++j) {
      if (v == p.cores.values[j]) ++counts[j];
    }
  }
  const ChiSquareResult r = chi_square_test(counts, pmf);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(ChiSquareTest, WrongDateCompositionRejected) {
  // Sample from the 2006 pmf, test against the 2010 pmf: must reject.
  const core::ModelParams p = core::paper_params();
  util::Rng rng(2);
  std::vector<std::uint64_t> counts(p.cores.values.size(), 0);
  for (int i = 0; i < 50000; ++i) {
    const double v = p.cores.quantile(0.0, rng.uniform());
    for (std::size_t j = 0; j < p.cores.values.size(); ++j) {
      if (v == p.cores.values[j]) ++counts[j];
    }
  }
  const ChiSquareResult r = chi_square_test(counts, p.cores.pmf(4.0));
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquareTwoSample, IdenticalCompositionsPass) {
  const std::vector<std::uint64_t> a = {400, 300, 200, 100};
  const ChiSquareResult r = chi_square_two_sample(a, a);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(ChiSquareTwoSample, DifferentCompositionsRejected) {
  const std::vector<std::uint64_t> a = {800, 100, 50, 50};
  const std::vector<std::uint64_t> b = {100, 800, 50, 50};
  const ChiSquareResult r = chi_square_two_sample(a, b);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquareTwoSample, ScaleInvarianceOfConclusion) {
  // Same composition at different sample sizes: should not reject.
  const std::vector<std::uint64_t> a = {4000, 3000, 2000, 1000};
  const std::vector<std::uint64_t> b = {400, 300, 200, 100};
  const ChiSquareResult r = chi_square_two_sample(a, b);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(ChiSquareTwoSample, RejectsBadInputs) {
  EXPECT_THROW(chi_square_two_sample({}, {}), std::invalid_argument);
  EXPECT_THROW(chi_square_two_sample(std::vector<std::uint64_t>{1},
                                     std::vector<std::uint64_t>{1, 2}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_two_sample(std::vector<std::uint64_t>{0, 0},
                                     std::vector<std::uint64_t>{1, 2}),
               std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::stats

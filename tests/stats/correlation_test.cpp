#include "stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace resmodel::stats {
namespace {

TEST(Pearson, PerfectPositiveLinear) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeLinear) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, InvariantToAffineTransform) {
  util::Rng rng(1);
  std::vector<double> x(500), y(500), y2(500);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = 0.5 * x[i] + rng.normal();
    y2[i] = 100.0 - 7.0 * y[i];  // affine with negative slope
  }
  EXPECT_NEAR(pearson(x, y2), -pearson(x, y), 1e-12);
}

TEST(Pearson, IndependentSamplesNearZero) {
  util::Rng rng(2);
  std::vector<double> x(50000), y(50000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.02);
}

TEST(Pearson, DegenerateInputsAreNan) {
  EXPECT_TRUE(std::isnan(pearson(std::vector<double>{1.0},
                                 std::vector<double>{2.0})));
  EXPECT_TRUE(std::isnan(pearson(std::vector<double>{1, 2},
                                 std::vector<double>{1, 2, 3})));
  EXPECT_TRUE(std::isnan(pearson(std::vector<double>{1, 1, 1},
                                 std::vector<double>{1, 2, 3})));
}

TEST(Spearman, MonotoneNonlinearGivesOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // x^3
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);  // pearson is not 1 for nonlinear
}

TEST(Spearman, TiesAveraged) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(CorrelationMatrix, DiagonalIsOneAndSymmetric) {
  util::Rng rng(3);
  std::vector<NamedColumn> cols(3);
  cols[0].name = "a";
  cols[1].name = "b";
  cols[2].name = "c";
  for (int i = 0; i < 1000; ++i) {
    const double base = rng.normal();
    cols[0].values.push_back(base);
    cols[1].values.push_back(base + rng.normal());
    cols[2].values.push_back(rng.normal());
  }
  const Matrix m = correlation_matrix(cols);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m(i, i), 1.0);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), m(j, i));
    }
  }
  EXPECT_GT(m(0, 1), 0.5);       // correlated by construction
  EXPECT_LT(std::fabs(m(0, 2)), 0.15);  // independent
}

TEST(CorrelationMatrix, RejectsUnequalColumns) {
  std::vector<NamedColumn> cols = {{"a", {1, 2, 3}}, {"b", {1, 2}}};
  EXPECT_THROW(correlation_matrix(cols), std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::stats

#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace resmodel::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Mean, KnownValue) { EXPECT_DOUBLE_EQ(mean(kSample), 5.0); }

TEST(Mean, EmptyIsNan) { EXPECT_TRUE(std::isnan(mean({}))); }

TEST(Variance, UnbiasedKnownValue) {
  // Sum of squared deviations = 32; n-1 = 7.
  EXPECT_NEAR(variance(kSample), 32.0 / 7.0, 1e-12);
}

TEST(Variance, RequiresTwoPoints) {
  EXPECT_TRUE(std::isnan(variance(std::vector<double>{1.0})));
}

TEST(Stddev, IsSqrtOfVariance) {
  EXPECT_NEAR(stddev(kSample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Quantile, MedianOfEvenSample) {
  EXPECT_DOUBLE_EQ(median(kSample), 4.5);
}

TEST(Quantile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
}

TEST(Quantile, Extremes) {
  EXPECT_DOUBLE_EQ(quantile(kSample, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(kSample, 1.0), 9.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.75), 7.5);
}

TEST(Quantile, DoesNotMutateInput) {
  std::vector<double> xs = {3.0, 1.0, 2.0};
  (void)quantile(xs, 0.5);
  EXPECT_EQ(xs, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(MinMax, KnownValues) {
  EXPECT_DOUBLE_EQ(minimum(kSample), 2.0);
  EXPECT_DOUBLE_EQ(maximum(kSample), 9.0);
}

TEST(Summarize, AllFieldsConsistent) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.count, kSample.size());
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(s.variance), 1e-12);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(std::isnan(s.mean));
  EXPECT_TRUE(std::isnan(s.median));
}

TEST(Summarize, SinglePoint) {
  const Summary s = summarize(std::vector<double>{7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
}

}  // namespace
}  // namespace resmodel::stats

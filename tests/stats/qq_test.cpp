#include "stats/qq.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace resmodel::stats {
namespace {

std::vector<double> draw(const Distribution& dist, int n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(QqPoints, ThrowsOnEmpty) {
  const NormalDist d(0, 1);
  EXPECT_THROW(qq_points({}, d), std::invalid_argument);
  EXPECT_THROW(qq_points_two_sample({}, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(QqPoints, CorrectModelHugsDiagonal) {
  const NormalDist d(2056.0, 1046.0);
  const auto points = qq_points(draw(d, 50000, 1), d, 99);
  EXPECT_LT(qq_max_relative_deviation(points), 0.08);
}

TEST(QqPoints, WrongModelDeviates) {
  const NormalDist truth(0.0, 1.0);
  const NormalDist shifted(2.0, 1.0);
  const auto points = qq_points(draw(truth, 20000, 2), shifted, 99);
  EXPECT_GT(qq_max_relative_deviation(points), 0.25);
}

TEST(QqPoints, RequestedPointCountReturned) {
  const NormalDist d(0, 1);
  EXPECT_EQ(qq_points(draw(d, 1000, 3), d, 25).size(), 25u);
}

TEST(QqPoints, MonotoneInBothCoordinates) {
  const auto d = LogNormalDist::from_moments(98.0, 157.0 * 157.0);
  const auto points = qq_points(draw(d, 20000, 4), d, 50);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].first, points[i - 1].first);
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
}

TEST(QqTwoSample, IdenticalSamplesOnDiagonal) {
  const NormalDist d(10.0, 2.0);
  const std::vector<double> xs = draw(d, 5000, 5);
  const auto points = qq_points_two_sample(xs, xs, 40);
  for (const auto& [x, y] : points) {
    EXPECT_DOUBLE_EQ(x, y);
  }
}

TEST(QqTwoSample, SameDistributionSamplesNearDiagonal) {
  const NormalDist d(100.0, 10.0);
  const auto points =
      qq_points_two_sample(draw(d, 50000, 6), draw(d, 50000, 7), 80);
  EXPECT_LT(qq_max_relative_deviation(points), 0.05);
}

TEST(QqMaxRelativeDeviation, ZeroOnExactDiagonal) {
  EXPECT_DOUBLE_EQ(
      qq_max_relative_deviation({{1.0, 1.0}, {2.0, 2.0}, {-3.0, -3.0}}),
      0.0);
}

TEST(QqMaxRelativeDeviation, ScalesByX) {
  // y off by 10% of x.
  EXPECT_NEAR(qq_max_relative_deviation({{10.0, 11.0}}), 0.1, 1e-12);
}

}  // namespace
}  // namespace resmodel::stats

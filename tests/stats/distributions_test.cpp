// Property tests for the seven candidate distributions: CDF/quantile
// inversion, pdf/CDF consistency (numeric derivative), sampling moments,
// and support boundaries — each run over a sweep of parameter sets via
// TEST_P.
#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "stats/descriptive.h"
#include "util/rng.h"

namespace resmodel::stats {
namespace {

struct DistCase {
  std::string label;
  std::function<std::unique_ptr<Distribution>()> make;
  double support_lo;  // values strictly below have cdf ~0
  bool finite_variance;
};

std::vector<DistCase> all_cases() {
  return {
      {"normal_std", [] { return NormalDist(0, 1).clone(); }, -1e9, true},
      {"normal_wide", [] { return NormalDist(2056, 1046).clone(); }, -1e9,
       true},
      {"lognormal", [] { return LogNormalDist(3.0, 0.9).clone(); }, 0.0,
       true},
      {"lognormal_disk",
       [] { return LogNormalDist::from_moments(32.89, 60.25 * 60.25).clone(); },
       0.0, true},
      {"exponential", [] { return ExponentialDist(0.25).clone(); }, 0.0,
       true},
      {"weibull_paper", [] { return WeibullDist(0.58, 135.0).clone(); }, 0.0,
       true},
      {"weibull_k2", [] { return WeibullDist(2.0, 10.0).clone(); }, 0.0,
       true},
      {"pareto", [] { return ParetoDist(3.5, 2.0).clone(); }, 2.0, true},
      {"gamma_k05", [] { return GammaDist(0.5, 2.0).clone(); }, 0.0, true},
      {"gamma_k4", [] { return GammaDist(4.0, 1.5).clone(); }, 0.0, true},
      {"loggamma", [] { return LogGammaDist(2.0, 0.2).clone(); }, 1.0, true},
  };
}

class DistributionProperty : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperty, QuantileInvertsCdf) {
  const auto dist = GetParam().make();
  for (double p : {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double x = dist->quantile(p);
    EXPECT_NEAR(dist->cdf(x), p, 1e-7)
        << GetParam().label << " p=" << p << " x=" << x;
  }
}

TEST_P(DistributionProperty, CdfIsMonotone) {
  const auto dist = GetParam().make();
  double prev = -0.001;
  for (double p : {0.02, 0.1, 0.3, 0.5, 0.7, 0.9, 0.98}) {
    const double c = dist->cdf(dist->quantile(p));
    EXPECT_GE(c, prev - 1e-12) << GetParam().label;
    prev = c;
  }
}

TEST_P(DistributionProperty, PdfMatchesCdfDerivative) {
  const auto dist = GetParam().make();
  for (double p : {0.2, 0.5, 0.8}) {
    const double x = dist->quantile(p);
    const double h = std::max(1e-6, std::fabs(x) * 1e-6);
    const double numeric = (dist->cdf(x + h) - dist->cdf(x - h)) / (2 * h);
    const double pdf = dist->pdf(x);
    EXPECT_NEAR(numeric, pdf, 1e-4 * std::max(1.0, pdf))
        << GetParam().label << " at p=" << p;
  }
}

TEST_P(DistributionProperty, LogPdfConsistentWithPdf) {
  const auto dist = GetParam().make();
  for (double p : {0.1, 0.5, 0.9}) {
    const double x = dist->quantile(p);
    EXPECT_NEAR(std::exp(dist->log_pdf(x)), dist->pdf(x),
                1e-9 * std::max(1.0, dist->pdf(x)))
        << GetParam().label;
  }
}

TEST_P(DistributionProperty, CdfZeroBelowSupport) {
  const auto dist = GetParam().make();
  if (GetParam().support_lo > -1e8) {
    EXPECT_DOUBLE_EQ(dist->cdf(GetParam().support_lo - 1.0), 0.0)
        << GetParam().label;
    EXPECT_DOUBLE_EQ(dist->pdf(GetParam().support_lo - 1.0), 0.0)
        << GetParam().label;
  }
}

TEST_P(DistributionProperty, SampleMeanMatchesAnalyticMean) {
  const auto dist = GetParam().make();
  util::Rng rng(99);
  constexpr int kN = 120000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += dist->sample(rng);
  const double sample_mean = sum / kN;
  const double tolerance =
      5.0 * std::sqrt(dist->variance() / kN) + 1e-9;  // ~5 sigma
  EXPECT_NEAR(sample_mean, dist->mean(), tolerance) << GetParam().label;
}

TEST_P(DistributionProperty, SamplesRespectSupport) {
  const auto dist = GetParam().make();
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = dist->sample(rng);
    if (GetParam().support_lo > -1e8) {
      ASSERT_GE(x, GetParam().support_lo - 1e-9) << GetParam().label;
    }
    ASSERT_TRUE(std::isfinite(x)) << GetParam().label;
  }
}

TEST_P(DistributionProperty, SampleQuantilesMatchAnalytic) {
  const auto dist = GetParam().make();
  util::Rng rng(17);
  constexpr int kN = 60000;
  std::vector<double> xs(kN);
  for (double& x : xs) x = dist->sample(rng);
  for (double p : {0.25, 0.5, 0.75}) {
    const double empirical = quantile(xs, p);
    const double analytic = dist->quantile(p);
    // Compare on the CDF scale: F(empirical quantile) should be ~p.
    EXPECT_NEAR(dist->cdf(empirical), p, 0.02)
        << GetParam().label << " p=" << p << " emp=" << empirical
        << " ana=" << analytic;
  }
}

TEST_P(DistributionProperty, CloneIsDeepAndEquivalent) {
  const auto dist = GetParam().make();
  const auto copy = dist->clone();
  EXPECT_EQ(copy->name(), dist->name());
  for (double p : {0.3, 0.6}) {
    EXPECT_DOUBLE_EQ(copy->quantile(p), dist->quantile(p));
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionProperty,
                         ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return info.param.label; });

// ------------------------- family-specific facts -------------------------

TEST(NormalDist, RejectsNonPositiveSigma) {
  EXPECT_THROW(NormalDist(0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(NormalDist(0.0, -1.0), std::invalid_argument);
}

TEST(LogNormalDist, FromMomentsReproducesMoments) {
  const auto d = LogNormalDist::from_moments(98.13, 157.8 * 157.8);
  EXPECT_NEAR(d.mean(), 98.13, 1e-9);
  EXPECT_NEAR(d.variance(), 157.8 * 157.8, 1e-6);
}

TEST(LogNormalDist, FromMomentsRejectsNonPositive) {
  EXPECT_THROW(LogNormalDist::from_moments(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormalDist::from_moments(1.0, 0.0), std::invalid_argument);
}

TEST(ExponentialDist, MemorylessCdfRatio) {
  const ExponentialDist d(0.7);
  // P(X > s + t) = P(X > s) P(X > t).
  const double s = 1.3, t = 2.1;
  EXPECT_NEAR(1.0 - d.cdf(s + t), (1.0 - d.cdf(s)) * (1.0 - d.cdf(t)), 1e-12);
}

TEST(WeibullDist, K1ReducesToExponential) {
  const WeibullDist w(1.0, 4.0);
  const ExponentialDist e(0.25);
  for (double x : {0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(WeibullDist, PaperLifetimeMedian) {
  // Weibull(k=0.58, lambda=135): median = 135 * ln(2)^(1/0.58) ~ 72 days,
  // matching the paper's observed 71.14-day median.
  const WeibullDist w(0.58, 135.0);
  EXPECT_NEAR(w.quantile(0.5), 135.0 * std::pow(std::log(2.0), 1.0 / 0.58),
              1e-9);
  EXPECT_NEAR(w.quantile(0.5), 72.0, 2.5);
}

TEST(ParetoDist, MeanInfiniteForSmallAlpha) {
  EXPECT_TRUE(std::isinf(ParetoDist(0.9, 1.0).mean()));
  EXPECT_TRUE(std::isinf(ParetoDist(1.5, 1.0).variance()));
}

TEST(GammaDist, K1ReducesToExponential) {
  const GammaDist g(1.0, 2.0);
  const ExponentialDist e(0.5);
  for (double x : {0.1, 1.0, 5.0}) {
    EXPECT_NEAR(g.cdf(x), e.cdf(x), 1e-10);
  }
}

TEST(LogGammaDist, SupportStartsAtOne) {
  const LogGammaDist d(2.0, 0.3);
  EXPECT_DOUBLE_EQ(d.cdf(0.99), 0.0);
  EXPECT_DOUBLE_EQ(d.pdf(0.5), 0.0);
  EXPECT_GT(d.cdf(2.0), 0.0);
}

TEST(LogGammaDist, LogOfSamplesIsGamma) {
  const LogGammaDist d(3.0, 0.25);
  const GammaDist inner(3.0, 0.25);
  util::Rng rng(5);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += std::log(d.sample(rng));
  EXPECT_NEAR(sum / kN, inner.mean(), 0.02);
}

TEST(SampleGamma, SmallShapeBoostWorks) {
  util::Rng rng(3);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = sample_gamma(rng, 0.3, 2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 0.6, 0.02);  // k * theta
}

}  // namespace
}  // namespace resmodel::stats

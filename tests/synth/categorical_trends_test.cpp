#include "synth/categorical_trends.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace resmodel::synth {
namespace {

TEST(CategoricalTrend, RejectsBadConstruction) {
  EXPECT_THROW(CategoricalTrend({0.0}, {{1.0}}), std::invalid_argument);
  EXPECT_THROW(CategoricalTrend({1.0, 0.0}, {{1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(CategoricalTrend({0.0, 1.0}, {{1.0}}), std::invalid_argument);
}

TEST(CategoricalTrend, PmfNormalizedEverywhere) {
  const CategoricalTrend trend({0.0, 2.0}, {{30.0, 10.0}, {70.0, 90.0}});
  for (double t : {-1.0, 0.0, 0.5, 1.0, 2.0, 5.0}) {
    const std::vector<double> p = trend.pmf(t);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
  }
}

TEST(CategoricalTrend, InterpolatesLinearly) {
  const CategoricalTrend trend({0.0, 2.0}, {{40.0, 20.0}, {60.0, 80.0}});
  const std::vector<double> mid = trend.pmf(1.0);
  EXPECT_NEAR(mid[0], 0.30, 1e-12);
  EXPECT_NEAR(mid[1], 0.70, 1e-12);
}

TEST(CategoricalTrend, ClampsOutsideAnchors) {
  const CategoricalTrend trend({0.0, 1.0}, {{100.0, 0.0}, {0.0, 100.0}});
  EXPECT_NEAR(trend.pmf(-5.0)[0], 1.0, 1e-12);
  EXPECT_NEAR(trend.pmf(9.0)[1], 1.0, 1e-12);
}

TEST(CategoricalTrend, SampleFollowsPmf) {
  const CategoricalTrend trend({0.0, 1.0}, {{25.0, 25.0}, {75.0, 75.0}});
  util::Rng rng(1);
  int count0 = 0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    if (trend.sample(0.5, rng) == 0) ++count0;
  }
  EXPECT_NEAR(count0 / static_cast<double>(kN), 0.25, 0.01);
}

TEST(CpuFamilyTrend, MatchesTableIAnchors) {
  const CategoricalTrend& trend = cpu_family_trend();
  ASSERT_EQ(trend.category_count(),
            static_cast<std::size_t>(trace::kCpuFamilyCount));
  const auto p4 = static_cast<std::size_t>(trace::CpuFamily::kPentium4);
  const auto core2 = static_cast<std::size_t>(trace::CpuFamily::kIntelCore2);
  // 2006: P4 36.8%, Core2 0.9%. 2010: P4 15.5%, Core2 32.0%.
  EXPECT_NEAR(trend.pmf(0.0)[p4], 0.368, 0.01);
  EXPECT_NEAR(trend.pmf(0.0)[core2], 0.009, 0.005);
  EXPECT_NEAR(trend.pmf(4.0)[p4], 0.155, 0.01);
  EXPECT_NEAR(trend.pmf(4.0)[core2], 0.320, 0.01);
}

TEST(OsFamilyTrend, MatchesTableIIAnchors) {
  const CategoricalTrend& trend = os_family_trend();
  const auto xp = static_cast<std::size_t>(trace::OsFamily::kWindowsXp);
  const auto win7 = static_cast<std::size_t>(trace::OsFamily::kWindows7);
  EXPECT_NEAR(trend.pmf(0.0)[xp], 0.698, 0.01);
  EXPECT_NEAR(trend.pmf(4.0)[xp], 0.529, 0.01);
  EXPECT_NEAR(trend.pmf(0.0)[win7], 0.0, 1e-9);
  EXPECT_NEAR(trend.pmf(4.0)[win7], 0.092, 0.01);
}

TEST(GpuTypeTrend, MatchesTableVIIAnchors) {
  const CategoricalTrend& trend = gpu_type_trend();
  // Sep 2009 (t=3.67): GeForce 82.5%, Radeon 12.2%.
  EXPECT_NEAR(trend.pmf(3.67)[0], 0.825, 0.01);
  EXPECT_NEAR(trend.pmf(3.67)[1], 0.122, 0.01);
  // Sep 2010 (t=4.67): GeForce 63.6%, Radeon 31.5%.
  EXPECT_NEAR(trend.pmf(4.67)[0], 0.636, 0.01);
  EXPECT_NEAR(trend.pmf(4.67)[1], 0.315, 0.01);
}

TEST(GpuAdoption, PaperAnchors) {
  EXPECT_NEAR(gpu_adoption_fraction(3.67), 0.127, 1e-6);
  EXPECT_NEAR(gpu_adoption_fraction(4.67), 0.238, 1e-6);
  EXPECT_DOUBLE_EQ(gpu_adoption_fraction(0.0), 0.0);  // clamped
  EXPECT_LE(gpu_adoption_fraction(50.0), 0.5);
}

TEST(GpuMemoryPmf, CalibratedMoments) {
  const std::vector<double>& values = gpu_memory_values_mb();
  const auto mean_of = [&values](const std::vector<double>& pmf) {
    double m = 0.0;
    for (std::size_t i = 0; i < pmf.size(); ++i) m += pmf[i] * values[i];
    return m;
  };
  // Paper: mean 592.7 MB (Sep 2009) -> 659.4 MB (Sep 2010).
  EXPECT_NEAR(mean_of(gpu_memory_pmf(3.67)), 592.7, 20.0);
  EXPECT_NEAR(mean_of(gpu_memory_pmf(4.67)), 659.4, 20.0);
}

TEST(GpuMemoryPmf, GigabytePlusShareGrows) {
  const std::vector<double>& values = gpu_memory_values_mb();
  const auto ge_1gb = [&values](const std::vector<double>& pmf) {
    double share = 0.0;
    for (std::size_t i = 0; i < pmf.size(); ++i) {
      if (values[i] >= 1024.0) share += pmf[i];
    }
    return share;
  };
  // Paper: 19% -> 31%.
  EXPECT_NEAR(ge_1gb(gpu_memory_pmf(3.67)), 0.19, 0.04);
  EXPECT_NEAR(ge_1gb(gpu_memory_pmf(4.67)), 0.31, 0.04);
}

}  // namespace
}  // namespace resmodel::synth

#include "synth/population.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.h"
#include "stats/fitting.h"
#include "trace/lifetime.h"

namespace resmodel::synth {
namespace {

PopulationConfig small_config() {
  PopulationConfig config;
  config.seed = 7;
  config.target_active_hosts = 3000;
  return config;
}

const trace::TraceStore& shared_population() {
  static const trace::TraceStore kStore = generate_population(small_config());
  return kStore;
}

TEST(SamplePoisson, ZeroMeanGivesZero) {
  util::Rng rng(1);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
  EXPECT_EQ(sample_poisson(rng, -3.0), 0u);
}

TEST(SamplePoisson, SmallMeanMatches) {
  util::Rng rng(2);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += static_cast<double>(sample_poisson(rng, 3.5));
  EXPECT_NEAR(sum / kN, 3.5, 0.05);
}

TEST(SamplePoisson, LargeMeanMatchesMeanAndVariance) {
  util::Rng rng(3);
  constexpr int kN = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = static_cast<double>(sample_poisson(rng, 100.0));
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / kN;
  EXPECT_NEAR(mean, 100.0, 0.5);
  EXPECT_NEAR(sum2 / kN - mean * mean, 100.0, 5.0);
}

TEST(LifetimeLambda, DecaysOverTime) {
  const PopulationConfig config = small_config();
  EXPECT_GT(lifetime_lambda(config, 0.0), lifetime_lambda(config, 4.0));
  EXPECT_NEAR(lifetime_lambda(config, 0.0), config.lifetime_lambda_2006,
              1e-12);
}

TEST(Population, ActiveCountNearTarget) {
  const trace::TraceStore& store = shared_population();
  for (int year : {2006, 2007, 2008, 2009, 2010}) {
    const std::size_t active =
        store.active_count(util::ModelDate::from_ymd(year, 1, 1));
    EXPECT_GT(active, 2200u) << year;
    EXPECT_LT(active, 3900u) << year;
  }
}

TEST(Population, LifetimesMatchPaperScale) {
  const trace::TraceStore& store = shared_population();
  const auto lifetimes =
      trace::host_lifetimes(store, util::ModelDate::from_ymd(2010, 7, 1));
  // Paper: mean 192.4 days, median 71.14 days.
  EXPECT_NEAR(stats::mean(lifetimes), 192.4, 40.0);
  EXPECT_NEAR(stats::median(lifetimes), 71.1, 20.0);
}

TEST(Population, LifetimesFitWeibullWithPaperShape) {
  const trace::TraceStore& store = shared_population();
  auto lifetimes =
      trace::host_lifetimes(store, util::ModelDate::from_ymd(2010, 7, 1));
  // Weibull MLE needs strictly positive values.
  std::erase_if(lifetimes, [](double v) { return v <= 0.0; });
  const auto fit = stats::fit_weibull(lifetimes);
  ASSERT_TRUE(fit.has_value());
  // The band is a sampling-noise tolerance, not an exactness claim: the
  // day-batched generation engine consumes the rng in a different order
  // than the original per-host loop, so seed 7 now lands on a different
  // (equally valid) sample, and the shape MLE is biased upward by
  // integer-day rounding and end-of-window censoring.
  EXPECT_NEAR(fit->k(), 0.58, 0.09);
  EXPECT_NEAR(fit->lambda(), 135.0, 35.0);
}

TEST(Population, NewerHostsDieSooner) {
  // The Figure-3 effect.
  const trace::TraceStore& store = shared_population();
  const auto bins = trace::creation_date_vs_lifetime(
      store, util::ModelDate::from_ymd(2006, 1, 1),
      util::ModelDate::from_ymd(2010, 1, 1), 365,
      util::ModelDate::from_ymd(2009, 7, 1));
  ASSERT_GE(bins.size(), 3u);
  EXPECT_GT(bins.front().mean_lifetime_days, bins[2].mean_lifetime_days);
}

TEST(Population, ContainsCorruptRecordsNearPaperRate) {
  trace::TraceStore copy;
  for (const trace::HostRecord& h : shared_population().hosts()) copy.add(h);
  const std::size_t total = copy.size();
  const std::size_t discarded = copy.discard_implausible();
  const double fraction = static_cast<double>(discarded) / total;
  EXPECT_GT(fraction, 0.0002);  // paper: 0.12%
  EXPECT_LT(fraction, 0.004);
}

TEST(Population, ContainsIntermediateMemoryValues) {
  std::size_t off_grid = 0, total = 0;
  const std::vector<double> grid = {256, 512, 768, 1024, 1536, 2048, 4096};
  for (const trace::HostRecord& h : shared_population().hosts()) {
    if (!trace::is_plausible(h)) continue;
    ++total;
    bool on_grid = false;
    for (double g : grid) {
      if (std::fabs(h.memory_per_core_mb() - g) < 1e-6) on_grid = true;
    }
    if (!on_grid) ++off_grid;
  }
  const double fraction = static_cast<double>(off_grid) / total;
  EXPECT_NEAR(fraction, 0.15, 0.05);
}

TEST(Population, GpuOnlyOnRecentHosts) {
  const trace::TraceStore& store = shared_population();
  std::size_t gpu_hosts = 0;
  for (const trace::HostRecord& h : store.hosts()) {
    if (h.gpu == trace::GpuType::kNone) continue;
    ++gpu_hosts;
    EXPECT_GT(h.gpu_memory_mb, 0.0);
  }
  EXPECT_GT(gpu_hosts, 0u);
  // GPU adoption at Sep 2010 should be roughly the paper's 23.8%.
  const auto sep2010 = util::ModelDate::from_ymd(2010, 8, 31);
  const auto counts = store.gpu_type_counts(sep2010);
  std::size_t active_total = 0;
  for (std::size_t c : counts) active_total += c;
  const double gpu_fraction =
      active_total == 0
          ? 0.0
          : 1.0 - static_cast<double>(counts[0]) / active_total;
  EXPECT_NEAR(gpu_fraction, 0.238, 0.08);
}

TEST(Population, AvailableDiskFractionRoughlyUniform) {
  // §V-G: available/total ratio should look uniform; mean ~ (lo+hi)/2.
  const PopulationConfig config = small_config();
  std::vector<double> fractions;
  for (const trace::HostRecord& h : shared_population().hosts()) {
    if (!trace::is_plausible(h) || h.disk_total_gb <= 0.0) continue;
    fractions.push_back(h.disk_avail_gb / h.disk_total_gb);
  }
  ASSERT_GT(fractions.size(), 1000u);
  const double expected_mean =
      (config.min_avail_disk_fraction + config.max_avail_disk_fraction) / 2.0;
  EXPECT_NEAR(stats::mean(fractions), expected_mean, 0.03);
  EXPECT_GE(stats::minimum(fractions), config.min_avail_disk_fraction - 1e-9);
  EXPECT_LE(stats::maximum(fractions), config.max_avail_disk_fraction + 1e-9);
}

TEST(Population, DeterministicForFixedSeed) {
  PopulationConfig config = small_config();
  config.target_active_hosts = 300;
  const trace::TraceStore a = generate_population(config);
  const trace::TraceStore b = generate_population(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a.host(i).id, b.host(i).id);
    EXPECT_DOUBLE_EQ(a.host(i).whetstone_mips, b.host(i).whetstone_mips);
  }
}

TEST(Population, DifferentSeedsDiffer) {
  PopulationConfig a = small_config();
  a.target_active_hosts = 300;
  PopulationConfig b = a;
  b.seed = a.seed + 1;
  const trace::TraceStore ta = generate_population(a);
  const trace::TraceStore tb = generate_population(b);
  // Sizes will differ or at least contents will.
  bool different = ta.size() != tb.size();
  if (!different) {
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (ta.host(i).whetstone_mips != tb.host(i).whetstone_mips) {
        different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(different);
}

TEST(Population, RecordsNeverExceedCollectionEnd) {
  const PopulationConfig config = small_config();
  const std::int32_t end_day = config.sim_end.day_index();
  for (const trace::HostRecord& h : shared_population().hosts()) {
    ASSERT_LE(h.last_contact_day, end_day);
  }
}

}  // namespace
}  // namespace resmodel::synth

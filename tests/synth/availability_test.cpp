#include "synth/availability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace resmodel::synth {
namespace {

TEST(AvailabilityParams, DefaultsValidate) {
  EXPECT_NO_THROW(AvailabilityParams{}.validate());
}

TEST(AvailabilityParams, RejectsNonPositive) {
  AvailabilityParams p;
  p.on_weibull_k = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = AvailabilityParams{};
  p.off_lognormal_sigma = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(AvailabilityModel, IntervalsAreSortedDisjointAndInWindow) {
  const AvailabilityModel model;
  util::Rng rng(1);
  const auto intervals = model.generate(100.0, 400.0, rng);
  ASSERT_FALSE(intervals.empty());
  double prev_end = 100.0;
  for (const AvailabilityInterval& interval : intervals) {
    ASSERT_GE(interval.start_day, prev_end - 1e-12);
    ASSERT_GT(interval.end_day, interval.start_day);
    ASSERT_LE(interval.end_day, 400.0 + 1e-12);
    prev_end = interval.end_day;
  }
  // Starts in the ON state.
  EXPECT_DOUBLE_EQ(intervals.front().start_day, 100.0);
}

TEST(AvailabilityModel, EmptyWindowGivesNoIntervals) {
  const AvailabilityModel model;
  util::Rng rng(2);
  EXPECT_TRUE(model.generate(10.0, 10.0, rng).empty());
  EXPECT_TRUE(model.generate(10.0, 5.0, rng).empty());
}

TEST(AvailabilityModel, LongRunFractionMatchesExpectation) {
  const AvailabilityModel model;
  util::Rng rng(3);
  const auto intervals = model.generate(0.0, 20000.0, rng);
  const double measured = availability_fraction(intervals, 0.0, 20000.0);
  EXPECT_NEAR(measured, model.expected_availability(), 0.04);
}

TEST(AvailabilityModel, ExpectedAvailabilityIsPlausible) {
  // Defaults approximate volunteer hosts: mostly-on but far from 100%.
  const AvailabilityModel model;
  EXPECT_GT(model.expected_availability(), 0.4);
  EXPECT_LT(model.expected_availability(), 0.95);
}

TEST(AvailabilityModel, HigherOffMeanLowersAvailability) {
  AvailabilityParams long_off;
  long_off.off_lognormal_mu = 0.5;  // much longer outages
  const AvailabilityModel base;
  const AvailabilityModel worse(long_off);
  EXPECT_LT(worse.expected_availability(), base.expected_availability());
}

TEST(AvailabilityFraction, PartialOverlapCounted) {
  const std::vector<AvailabilityInterval> on = {{0.0, 1.0}, {2.0, 4.0}};
  EXPECT_DOUBLE_EQ(availability_fraction(on, 0.0, 4.0), 0.75);
  EXPECT_DOUBLE_EQ(availability_fraction(on, 0.5, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(availability_fraction(on, 10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(availability_fraction(on, 5.0, 5.0), 0.0);
}

TEST(AvailabilityFraction, DegenerateWindows) {
  const std::vector<AvailabilityInterval> on = {{2.0, 4.0}};
  // Zero-length and inverted windows are 0, even inside an ON interval.
  EXPECT_DOUBLE_EQ(availability_fraction(on, 3.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(availability_fraction(on, 4.0, 2.0), 0.0);
  // Intervals fully outside the window contribute nothing, on both sides.
  EXPECT_DOUBLE_EQ(availability_fraction(on, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(availability_fraction(on, 5.0, 9.0), 0.0);
  // Empty timeline covers nothing.
  EXPECT_DOUBLE_EQ(availability_fraction({}, 0.0, 10.0), 0.0);
  // Window boundary exactly on the interval boundary: [4, 5) is OFF.
  EXPECT_DOUBLE_EQ(availability_fraction(on, 4.0, 5.0), 0.0);
}

TEST(NextAvailableTime, InsideAndBetweenIntervals) {
  const std::vector<AvailabilityInterval> on = {{0.0, 1.0}, {2.0, 4.0}};
  ASSERT_TRUE(next_available_time(on, 0.5).has_value());
  EXPECT_DOUBLE_EQ(*next_available_time(on, 0.5), 0.5);  // already on
  EXPECT_DOUBLE_EQ(*next_available_time(on, 1.5), 2.0);  // wait for next
  EXPECT_FALSE(next_available_time(on, 4.5).has_value());  // nothing left
}

TEST(NextAvailableTime, EdgeCases) {
  const std::vector<AvailabilityInterval> on = {{0.0, 1.0}, {2.0, 4.0}};
  // Empty timeline: never available.
  EXPECT_FALSE(next_available_time({}, 0.0).has_value());
  // Day exactly at an interval start: contained.
  EXPECT_DOUBLE_EQ(*next_available_time(on, 2.0), 2.0);
  // Day exactly at an interval end: ends are exclusive, so the next
  // interval (or nothing) answers.
  EXPECT_DOUBLE_EQ(*next_available_time(on, 1.0), 2.0);
  EXPECT_FALSE(next_available_time(on, 4.0).has_value());
  // Day before the first interval snaps forward to its start.
  const std::vector<AvailabilityInterval> late = {{5.0, 6.0}};
  EXPECT_DOUBLE_EQ(*next_available_time(late, 0.0), 5.0);
}

TEST(AvailabilityModel, StationaryStartKeepsDefaultStreamUnchanged) {
  // kOnAtStart is the default and must consume the rng exactly as the
  // two-argument overload always has.
  const AvailabilityModel model;
  util::Rng a(21), b(21);
  const auto legacy = model.generate(0.0, 50.0, a);
  const auto explicit_mode =
      model.generate(0.0, 50.0, b, StartMode::kOnAtStart);
  ASSERT_EQ(legacy.size(), explicit_mode.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_DOUBLE_EQ(legacy[i].start_day, explicit_mode[i].start_day);
    EXPECT_DOUBLE_EQ(legacy[i].end_day, explicit_mode[i].end_day);
  }
  EXPECT_EQ(a.next(), b.next());
}

TEST(AvailabilityModel, StationaryStartIsSometimesOff) {
  // Across many seeds, the stationary start must produce both initial
  // states: a first interval at the window edge (ON) and one strictly
  // after it (OFF residual first). Always-ON never produces the latter.
  const AvailabilityModel model;
  int started_on = 0, started_off = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed);
    const auto intervals =
        model.generate(0.0, 1000.0, rng, StartMode::kStationary);
    ASSERT_FALSE(intervals.empty());
    if (intervals.front().start_day == 0.0) {
      ++started_on;
    } else {
      ++started_off;
    }
  }
  EXPECT_GT(started_on, 0);
  EXPECT_GT(started_off, 0);
  // The ON share should be in the neighbourhood of the long-run fraction.
  const double on_share = static_cast<double>(started_on) / 200.0;
  EXPECT_NEAR(on_share, model.expected_availability(), 0.15);
}

TEST(AvailabilityModel, StationaryLongRunFractionStillMatches) {
  const AvailabilityModel model;
  util::Rng rng(33);
  const auto intervals =
      model.generate(0.0, 20000.0, rng, StartMode::kStationary);
  const double measured = availability_fraction(intervals, 0.0, 20000.0);
  EXPECT_NEAR(measured, model.expected_availability(), 0.04);
}

TEST(AvailabilityModel, DeterministicForFixedSeed) {
  const AvailabilityModel model;
  util::Rng a(7), b(7);
  const auto ia = model.generate(0.0, 100.0, a);
  const auto ib = model.generate(0.0, 100.0, b);
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_DOUBLE_EQ(ia[i].start_day, ib[i].start_day);
    EXPECT_DOUBLE_EQ(ia[i].end_day, ib[i].end_day);
  }
}

}  // namespace
}  // namespace resmodel::synth

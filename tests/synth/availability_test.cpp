#include "synth/availability.h"

#include <gtest/gtest.h>

#include <cmath>

namespace resmodel::synth {
namespace {

TEST(AvailabilityParams, DefaultsValidate) {
  EXPECT_NO_THROW(AvailabilityParams{}.validate());
}

TEST(AvailabilityParams, RejectsNonPositive) {
  AvailabilityParams p;
  p.on_weibull_k = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = AvailabilityParams{};
  p.off_lognormal_sigma = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(AvailabilityModel, IntervalsAreSortedDisjointAndInWindow) {
  const AvailabilityModel model;
  util::Rng rng(1);
  const auto intervals = model.generate(100.0, 400.0, rng);
  ASSERT_FALSE(intervals.empty());
  double prev_end = 100.0;
  for (const AvailabilityInterval& interval : intervals) {
    ASSERT_GE(interval.start_day, prev_end - 1e-12);
    ASSERT_GT(interval.end_day, interval.start_day);
    ASSERT_LE(interval.end_day, 400.0 + 1e-12);
    prev_end = interval.end_day;
  }
  // Starts in the ON state.
  EXPECT_DOUBLE_EQ(intervals.front().start_day, 100.0);
}

TEST(AvailabilityModel, EmptyWindowGivesNoIntervals) {
  const AvailabilityModel model;
  util::Rng rng(2);
  EXPECT_TRUE(model.generate(10.0, 10.0, rng).empty());
  EXPECT_TRUE(model.generate(10.0, 5.0, rng).empty());
}

TEST(AvailabilityModel, LongRunFractionMatchesExpectation) {
  const AvailabilityModel model;
  util::Rng rng(3);
  const auto intervals = model.generate(0.0, 20000.0, rng);
  const double measured = availability_fraction(intervals, 0.0, 20000.0);
  EXPECT_NEAR(measured, model.expected_availability(), 0.04);
}

TEST(AvailabilityModel, ExpectedAvailabilityIsPlausible) {
  // Defaults approximate volunteer hosts: mostly-on but far from 100%.
  const AvailabilityModel model;
  EXPECT_GT(model.expected_availability(), 0.4);
  EXPECT_LT(model.expected_availability(), 0.95);
}

TEST(AvailabilityModel, HigherOffMeanLowersAvailability) {
  AvailabilityParams long_off;
  long_off.off_lognormal_mu = 0.5;  // much longer outages
  const AvailabilityModel base;
  const AvailabilityModel worse(long_off);
  EXPECT_LT(worse.expected_availability(), base.expected_availability());
}

TEST(AvailabilityFraction, PartialOverlapCounted) {
  const std::vector<AvailabilityInterval> on = {{0.0, 1.0}, {2.0, 4.0}};
  EXPECT_DOUBLE_EQ(availability_fraction(on, 0.0, 4.0), 0.75);
  EXPECT_DOUBLE_EQ(availability_fraction(on, 0.5, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(availability_fraction(on, 10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(availability_fraction(on, 5.0, 5.0), 0.0);
}

TEST(NextAvailableTime, InsideAndBetweenIntervals) {
  const std::vector<AvailabilityInterval> on = {{0.0, 1.0}, {2.0, 4.0}};
  EXPECT_DOUBLE_EQ(next_available_time(on, 0.5), 0.5);   // already on
  EXPECT_DOUBLE_EQ(next_available_time(on, 1.5), 2.0);   // wait for next
  EXPECT_DOUBLE_EQ(next_available_time(on, 4.5), -1.0);  // nothing left
}

TEST(AvailabilityModel, DeterministicForFixedSeed) {
  const AvailabilityModel model;
  util::Rng a(7), b(7);
  const auto ia = model.generate(0.0, 100.0, a);
  const auto ib = model.generate(0.0, 100.0, b);
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_DOUBLE_EQ(ia[i].start_day, ib[i].start_day);
    EXPECT_DOUBLE_EQ(ia[i].end_day, ib[i].end_day);
  }
}

}  // namespace
}  // namespace resmodel::synth

#include "store/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "store/fault_injection.h"

namespace resmodel::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "<absent>";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AtomicFileWriter, CommitPublishesExactBytes) {
  const std::string path = temp_path("atomic_commit.bin");
  std::remove(path.c_str());
  {
    AtomicFileWriter writer(path);
    writer.append("hello ", 6);
    EXPECT_EQ(writer.offset(), 6u);
    writer.append("world", 5);
    EXPECT_EQ(writer.offset(), 11u);
    // Until commit, the destination must not exist...
    EXPECT_EQ(read_file(path), "<absent>");
    // ...but the .tmp is being filled.
    EXPECT_NE(read_file(writer.tmp_path()), "<absent>");
    writer.commit();
  }
  EXPECT_EQ(read_file(path), "hello world");
  EXPECT_EQ(read_file(path + ".tmp"), "<absent>");
}

TEST(AtomicFileWriter, AbortLeavesPreviousContentUntouched) {
  const std::string path = temp_path("atomic_abort.bin");
  {
    AtomicFileWriter writer(path);
    writer.append("old", 3);
    writer.commit();
  }
  {
    AtomicFileWriter writer(path);
    writer.append("NEW-DATA", 8);
    writer.abort();
  }
  EXPECT_EQ(read_file(path), "old");
  EXPECT_EQ(read_file(path + ".tmp"), "<absent>");
}

TEST(AtomicFileWriter, DestructionWithoutCommitAborts) {
  const std::string path = temp_path("atomic_dtor.bin");
  {
    AtomicFileWriter writer(path);
    writer.append("old", 3);
    writer.commit();
  }
  {
    AtomicFileWriter writer(path);
    writer.append("doomed", 6);
  }
  EXPECT_EQ(read_file(path), "old");
  EXPECT_EQ(read_file(path + ".tmp"), "<absent>");
}

TEST(AtomicFileWriter, InjectedNoSpaceSurfacesTypedErrorAndPreserves) {
  const std::string path = temp_path("atomic_enospc.bin");
  {
    AtomicFileWriter writer(path);
    writer.append("precious", 8);
    writer.commit();
  }
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kNoSpace;
  plan.at_byte = 4;
  FaultyFileSystem fs(FileSystem::real(), plan);
  bool threw = false;
  try {
    AtomicFileWriter writer(path, fs);
    writer.append("0123456789", 10);  // crosses byte 4 -> short write + throw
    writer.commit();
  } catch (const StoreError& e) {
    threw = true;
    EXPECT_EQ(e.errc(), StoreErrc::kNoSpace);
  }
  EXPECT_TRUE(threw);
  EXPECT_TRUE(fs.fault_fired());
  EXPECT_EQ(read_file(path), "precious");
  EXPECT_EQ(read_file(path + ".tmp"), "<absent>");
}

TEST(AtomicFileWriter, CrashAtCommitLeavesTmpButNotDestination) {
  const std::string path = temp_path("atomic_crash.bin");
  {
    AtomicFileWriter writer(path);
    writer.append("precious", 8);
    writer.commit();
  }
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kCrash;
  plan.at_byte = 1u << 30;  // never reached during appends -> dies at rename
  FaultyFileSystem fs(FileSystem::real(), plan);
  bool threw = false;
  std::string tmp;
  try {
    AtomicFileWriter writer(path, fs);
    tmp = writer.tmp_path();
    writer.append("torn", 4);
    writer.commit();
  } catch (const StoreError& e) {
    threw = true;
    EXPECT_EQ(e.errc(), StoreErrc::kSimulatedCrash);
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(read_file(path), "precious");
  // A crashed process cannot clean up: the .tmp litter stays, like after
  // a real power cut.
  EXPECT_EQ(read_file(tmp), "torn");
  std::remove(tmp.c_str());
}

TEST(AtomicFileWriter, UnwritableDirectoryIsTypedCannotOpen) {
  try {
    AtomicFileWriter writer("/nonexistent-dir-xyz/file.bin");
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.errc(), StoreErrc::kCannotOpen);
    EXPECT_NE(e.path().find("/nonexistent-dir-xyz/"), std::string::npos);
  }
}

}  // namespace
}  // namespace resmodel::store

// Round-trip bit-identity for the TraceStore and GeneratedHostBatch
// snapshot adapters, at 1k and 100k rows. "Bit-identical" is checked
// three ways: element equality after unpack, per-column digest equality
// between two independent writes (determinism), and — for the 1k
// populations — against hard-coded golden digests, so a format or
// serialization change cannot slip through as "still round-trips".
#include "store/adapters.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "store/fault_injection.h"
#include "trace/host_record.h"
#include "util/rng.h"

namespace resmodel::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

trace::TraceStore make_trace(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  trace::TraceStore store;
  store.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trace::HostRecord h;
    h.id = rng.uniform_index(1u << 30);
    h.created_day = static_cast<std::int32_t>(rng.uniform_index(2000)) - 500;
    h.last_contact_day = h.created_day +
                         static_cast<std::int32_t>(rng.uniform_index(1500));
    h.n_cores = 1 + static_cast<std::int32_t>(rng.uniform_index(8));
    h.memory_mb = 256.0 + static_cast<double>(rng.uniform_index(1u << 24)) /
                              1024.0;
    h.dhrystone_mips = static_cast<double>(rng.uniform_index(1u << 22)) / 3.0;
    h.whetstone_mips = static_cast<double>(rng.uniform_index(1u << 22)) / 7.0;
    h.disk_avail_gb = static_cast<double>(rng.uniform_index(1u << 20)) / 11.0;
    h.disk_total_gb = h.disk_avail_gb * 2.0;
    h.cpu = static_cast<trace::CpuFamily>(
        rng.uniform_index(trace::kCpuFamilyCount));
    h.os =
        static_cast<trace::OsFamily>(rng.uniform_index(trace::kOsFamilyCount));
    h.gpu =
        static_cast<trace::GpuType>(rng.uniform_index(trace::kGpuTypeCount));
    h.gpu_memory_mb = h.gpu == trace::GpuType::kNone
                          ? 0.0
                          : static_cast<double>(rng.uniform_index(4096));
    store.add(h);
  }
  return store;
}

core::GeneratedHostBatch make_population(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  core::GeneratedHostBatch batch;
  batch.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.n_cores[i] = 1 + static_cast<int>(rng.uniform_index(16));
    batch.memory_per_core_mb[i] =
        static_cast<double>(rng.uniform_index(1u << 24)) / 512.0;
    batch.memory_mb[i] = batch.memory_per_core_mb[i] * batch.n_cores[i];
    batch.whetstone_mips[i] =
        static_cast<double>(rng.uniform_index(1u << 22)) / 3.0;
    batch.dhrystone_mips[i] =
        static_cast<double>(rng.uniform_index(1u << 22)) / 5.0;
    batch.disk_avail_gb[i] =
        static_cast<double>(rng.uniform_index(1u << 20)) / 13.0;
  }
  return batch;
}

void expect_equal(const trace::TraceStore& a, const trace::TraceStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const trace::HostRecord& x = a.host(i);
    const trace::HostRecord& y = b.host(i);
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.created_day, y.created_day);
    EXPECT_EQ(x.last_contact_day, y.last_contact_day);
    EXPECT_EQ(x.n_cores, y.n_cores);
    // Bit identity, not approximate equality.
    EXPECT_EQ(x.memory_mb, y.memory_mb);
    EXPECT_EQ(x.dhrystone_mips, y.dhrystone_mips);
    EXPECT_EQ(x.whetstone_mips, y.whetstone_mips);
    EXPECT_EQ(x.disk_avail_gb, y.disk_avail_gb);
    EXPECT_EQ(x.disk_total_gb, y.disk_total_gb);
    EXPECT_EQ(x.cpu, y.cpu);
    EXPECT_EQ(x.os, y.os);
    EXPECT_EQ(x.gpu, y.gpu);
    EXPECT_EQ(x.gpu_memory_mb, y.gpu_memory_mb);
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at row " << i;
    }
  }
}

void expect_equal(const core::GeneratedHostBatch& a,
                  const core::GeneratedHostBatch& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.n_cores, b.n_cores);
  EXPECT_EQ(a.memory_per_core_mb, b.memory_per_core_mb);
  EXPECT_EQ(a.memory_mb, b.memory_mb);
  EXPECT_EQ(a.whetstone_mips, b.whetstone_mips);
  EXPECT_EQ(a.dhrystone_mips, b.dhrystone_mips);
  EXPECT_EQ(a.disk_avail_gb, b.disk_avail_gb);
}

class AdaptersRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdaptersRoundTrip, TraceBitIdentity) {
  const std::size_t n = GetParam();
  const trace::TraceStore store = make_trace(n, 0x77ace + n);
  const std::string path = temp_path("adapter_trace.snap");

  write_trace_snapshot(path, store, /*shard_rows=*/n / 3 + 1);
  const std::string first_bytes = read_file(path);
  const trace::TraceStore loaded = read_trace_snapshot(path);
  expect_equal(store, loaded);

  // Determinism: an independent re-pack produces the identical file.
  write_trace_snapshot(path, store, n / 3 + 1);
  EXPECT_EQ(read_file(path), first_bytes);

  // In-memory pack/unpack agrees with the file path.
  expect_equal(store, unpack_trace(pack_trace(store)));
  std::remove(path.c_str());
}

TEST_P(AdaptersRoundTrip, PopulationBitIdentity) {
  const std::size_t n = GetParam();
  const core::GeneratedHostBatch batch = make_population(n, 0xB47C4 + n);
  const std::string path = temp_path("adapter_pop.snap");

  write_population_snapshot(path, batch, /*shard_rows=*/n / 4 + 1);
  const std::string first_bytes = read_file(path);
  expect_equal(batch, read_population_snapshot(path));

  write_population_snapshot(path, batch, n / 4 + 1);
  EXPECT_EQ(read_file(path), first_bytes);

  expect_equal(batch, unpack_population(pack_population(batch)));
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdaptersRoundTrip,
                         ::testing::Values(std::size_t{1000},
                                           std::size_t{100000}),
                         [](const auto& info) {
                           return info.param == 1000 ? "1k" : "100k";
                         });

TEST(Adapters, GoldenDigests1k) {
  // Hard-coded digests of the 1k fixtures. If these change, the on-disk
  // encoding of existing snapshots changed — bump kFormatVersion and
  // write a migration note, don't just update the constants.
  const std::string path = temp_path("golden.snap");
  write_trace_snapshot(path, make_trace(1000, 0x77ace + 1000), 334);
  {
    SnapshotReader reader(path);
    const auto v = reader.verify();
    std::string joined;
    for (const std::uint32_t d : v.column_digests) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%08x,", d);
      joined += buf;
    }
    EXPECT_EQ(joined,
              "c9bc753e,84784bed,e1bb3480,2896a158,ad83ff2a,61da0211,"
              "247ab7d6,f5920ec0,4bb164fa,c9b7833e,093d373d,1b1a41f3,"
              "9520313d,");
  }
  write_population_snapshot(path, make_population(1000, 0xB47C4 + 1000), 251);
  {
    SnapshotReader reader(path);
    const auto v = reader.verify();
    std::string joined;
    for (const std::uint32_t d : v.column_digests) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%08x,", d);
      joined += buf;
    }
    EXPECT_EQ(joined, "e3384f8d,37958bcf,fd331e12,32857e73,434aabfe,b55bcf99,");
  }
  std::remove(path.c_str());
}

TEST(Adapters, UnpackRejectsWrongKind) {
  const core::GeneratedHostBatch batch = make_population(10, 1);
  const Snapshot snap = pack_population(batch);
  try {
    unpack_trace(snap);
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.errc(), StoreErrc::kSchemaMismatch);
  }
}

TEST(Adapters, UnpackRejectsOutOfRangeEnum) {
  trace::TraceStore store = make_trace(4, 2);
  Snapshot snap = pack_trace(store);
  Column* cpu = nullptr;
  for (Column& c : snap.columns) {
    if (c.spec.name == "cpu") cpu = &c;
  }
  ASSERT_NE(cpu, nullptr);
  cpu->data[2] = std::byte{200};  // not a CpuFamily
  try {
    unpack_trace(snap);
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.errc(), StoreErrc::kSchemaMismatch);
    EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos);
  }
}

TEST(Adapters, UnpackRejectsMissingColumn) {
  trace::TraceStore store = make_trace(4, 3);
  Snapshot snap = pack_trace(store);
  snap.columns.erase(snap.columns.begin());  // drop "id"
  try {
    unpack_trace(snap);
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.errc(), StoreErrc::kSchemaMismatch);
    EXPECT_NE(std::string(e.what()).find("id"), std::string::npos);
  }
}

TEST(Adapters, StreamingAppendValidatesSchema) {
  const std::string path = temp_path("wrong_schema.snap");
  SnapshotWriter writer(path, kTraceKind, trace_schema());
  const core::GeneratedHostBatch batch = make_population(5, 4);
  EXPECT_THROW(append_population_shard(writer, batch), StoreError);
}

TEST(Adapters, WriteThroughFaultyFsLeavesNoFile) {
  const std::string path = temp_path("adapters_fault.snap");
  std::remove(path.c_str());
  FaultPlan plan;
  plan.kind = FaultPlan::Kind::kIoError;
  plan.at_byte = 100;
  FaultyFileSystem fs(FileSystem::real(), plan);
  WriterOptions opts;
  opts.fs = &fs;
  EXPECT_THROW(
      write_population_snapshot(path, make_population(1000, 5), 0, opts),
      StoreError);
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

}  // namespace
}  // namespace resmodel::store

// The recovery-contract property suite: 240 deterministic seeded fault
// scenarios (2 populations x 2 fault families x 60 seeds) driven through
// the production write and read paths. The contract under test:
//
//   For every scenario, either the round trip is bit-identical, or the
//   operation surfaces a typed StoreError / itemized ReadReport whose
//   accounting is exact. A silently wrong value — an intact-looking
//   column whose bytes differ from what was written — is a failure of
//   this suite no matter how the fault landed.
//
// Determinism: every plan derives from util::Rng forks of a fixed
// per-scenario seed, so CI replays the identical fault grid on any
// machine (this suite is also the storage leg of the sanitize CI job).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "store/fault_injection.h"
#include "store/snapshot.h"
#include "util/checksum.h"
#include "util/rng.h"

namespace resmodel::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return "<absent>";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One deterministic test population: shape + a data seed.
struct PopulationSpec {
  const char* name;
  std::string kind;
  std::vector<ColumnSpec> schema;
  std::vector<std::uint64_t> shard_rows;
  std::uint64_t data_seed;
};

std::vector<PopulationSpec> populations() {
  return {
      {"wide",
       "fault.wide.v1",
       {{"a", DType::kF64}, {"b", DType::kI32}, {"c", DType::kU8},
        {"d", DType::kU64}, {"e", DType::kF32}, {"f", DType::kI64}},
       {31, 17},
       0xA11CE},
      {"deep",
       "fault.deep.v1",
       {{"x", DType::kF64}, {"y", DType::kI32}, {"z", DType::kU64}},
       {97, 97, 97, 97, 5},
       0xB0B},
  };
}

/// shards[s][c] = payload bytes of column c in shard s, filled from a
/// deterministic stream.
using ShardData = std::vector<std::vector<std::vector<std::byte>>>;

ShardData make_data(const PopulationSpec& spec) {
  util::Rng rng(spec.data_seed);
  ShardData shards;
  for (const std::uint64_t rows : spec.shard_rows) {
    std::vector<std::vector<std::byte>> cols;
    for (const ColumnSpec& col : spec.schema) {
      std::vector<std::byte> bytes(rows * dtype_size(col.dtype));
      for (std::byte& b : bytes) {
        b = static_cast<std::byte>(rng.uniform_index(256));
      }
      cols.push_back(std::move(bytes));
    }
    shards.push_back(std::move(cols));
  }
  return shards;
}

/// Writes the population; returns the writer's column digests.
std::vector<std::uint32_t> write_population(const std::string& path,
                                            const PopulationSpec& spec,
                                            const ShardData& shards,
                                            FileSystem* fs = nullptr) {
  WriterOptions opts;
  opts.fs = fs;
  SnapshotWriter writer(path, spec.kind, spec.schema, opts);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    std::vector<std::span<const std::byte>> spans;
    spans.reserve(shards[s].size());
    for (const auto& col : shards[s]) spans.emplace_back(col);
    writer.append_shard(spans, spec.shard_rows[s]);
  }
  writer.finish({{"suite", "fault_recovery"}});
  return writer.column_digests();
}

/// Byte-compares the recovered snapshot against the source data,
/// skipping exactly the (column, shard) pairs the report itemized as
/// lost (those must be zero-filled). Any other divergence is silent
/// corruption.
void check_recovered_exactly(const PopulationSpec& spec,
                             const ShardData& shards, const Snapshot& snap,
                             const ReadReport& report,
                             const std::string& label) {
  std::set<std::pair<std::uint32_t, std::uint64_t>> lost;
  std::uint64_t rows_lost = 0;
  for (const LostBlock& b : report.lost) {
    lost.insert({b.column, b.shard});
    rows_lost += b.rows;
  }
  EXPECT_EQ(report.rows_lost, rows_lost) << label;
  ASSERT_EQ(snap.columns.size(), spec.schema.size()) << label;

  for (std::size_t c = 0; c < spec.schema.size(); ++c) {
    const std::size_t elem = dtype_size(spec.schema[c].dtype);
    const std::vector<std::byte>& got = snap.columns[c].data;
    std::size_t offset = 0;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const std::vector<std::byte>& want = shards[s][c];
      if (offset + want.size() > got.size()) {
        // Footerless scans may not reach trailing shards at all; those
        // rows are simply absent (accounted via the report), which is a
        // shorter column, not a wrong one.
        break;
      }
      const bool is_lost =
          lost.count({static_cast<std::uint32_t>(c), s}) > 0;
      bool identical = true;
      bool zeroed = true;
      for (std::size_t i = 0; i < want.size(); ++i) {
        if (got[offset + i] != want[i]) identical = false;
        if (got[offset + i] != std::byte{0}) zeroed = false;
      }
      if (is_lost) {
        EXPECT_TRUE(zeroed) << label << ": lost block (col " << c
                            << ", shard " << s << ") not zero-filled";
      } else {
        EXPECT_TRUE(identical)
            << label << ": SILENT CORRUPTION in col " << c << ", shard "
            << s << " (" << want.size() / elem << " rows)";
      }
      offset += want.size();
    }
  }
}

// --- family 1: writer-visible faults (ENOSPC / EIO / crash) ----------------

TEST(FaultRecovery, WriterFaultsNeverDamageThePublishedFile) {
  for (const PopulationSpec& spec : populations()) {
    const ShardData shards = make_data(spec);
    const std::string path =
        temp_path(std::string("writer_fault_") + spec.name + ".snap");

    // Publish a genuine previous version, then measure the clean size
    // the fault offsets are sampled against.
    std::remove(path.c_str());
    const std::vector<std::uint32_t> v1_digests =
        write_population(path, spec, shards);
    const std::string v1_bytes = read_file(path);
    ASSERT_NE(v1_bytes, "<absent>");

    int clean = 0, faulted = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
      SCOPED_TRACE(std::string(spec.name) + " seed " + std::to_string(seed));
      util::Rng rng(0xFA17 + seed);
      util::Rng plan_rng = rng.fork();
      const FaultPlan plan = FaultPlan::sample(plan_rng, v1_bytes.size());
      FaultyFileSystem fs(FileSystem::real(), plan);

      bool threw = false;
      try {
        write_population(path, spec, shards, &fs);
      } catch (const StoreError& e) {
        threw = true;
        EXPECT_TRUE(e.errc() == StoreErrc::kNoSpace ||
                    e.errc() == StoreErrc::kIoError ||
                    e.errc() == StoreErrc::kSimulatedCrash)
            << to_string(e.errc());
      }
      // Crash plans always die (at the trigger or at commit); the other
      // kinds pass through only if the offset was never crossed.
      if (threw) {
        ++faulted;
        // The destination must be byte-for-byte the previous version.
        EXPECT_EQ(read_file(path), v1_bytes) << "destination damaged";
      } else {
        ++clean;
        EXPECT_FALSE(fs.fault_fired());
      }
      std::remove((path + ".tmp").c_str());  // crash scenarios leave litter

      // Whatever happened, the published file verifies bit-identically.
      SnapshotReader reader(path);
      const SnapshotReader::VerifyResult v = reader.verify();
      EXPECT_TRUE(v.report.complete);
      EXPECT_EQ(v.column_digests, v1_digests);
    }
    // The sampled grid must actually exercise faults (and kCrash ensures
    // at least a third of plans fire).
    EXPECT_GE(faulted, 15) << spec.name;
    EXPECT_EQ(clean + faulted, 60) << spec.name;
  }
}

// --- family 2: post-publication corruption (truncate / zero / bit flip) ----

TEST(FaultRecovery, CorruptionIsAlwaysDetectedAndExactlyAccounted) {
  for (const PopulationSpec& spec : populations()) {
    const ShardData shards = make_data(spec);
    const std::string clean_path =
        temp_path(std::string("corrupt_clean_") + spec.name + ".snap");
    const std::vector<std::uint32_t> digests =
        write_population(clean_path, spec, shards);
    const std::string clean_bytes = read_file(clean_path);
    std::uint64_t total_blocks = 0;
    {
      SnapshotReader reader(clean_path);
      total_blocks = reader.verify().report.blocks_expected;
    }

    for (std::uint64_t seed = 0; seed < 60; ++seed) {
      SCOPED_TRACE(std::string(spec.name) + " seed " + std::to_string(seed));
      const std::string path =
          temp_path(std::string("corrupt_") + spec.name + ".snap");
      {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << clean_bytes;
      }
      util::Rng rng(0xC0FF + seed);
      util::Rng plan_rng = rng.fork();
      const CorruptionPlan plan =
          CorruptionPlan::sample(plan_rng, clean_bytes.size());
      corrupt_file(path, plan);
      const bool unchanged = read_file(path) == clean_bytes;

      // Strict path: success is only acceptable when the corruption was
      // a genuine no-op (e.g. zeroing an already-zero tail).
      bool strict_ok = false;
      try {
        SnapshotReader reader(path);
        const Snapshot snap = reader.read_all();
        strict_ok = true;
        ReadReport none;
        none.blocks_expected = none.blocks_loaded = total_blocks;
        check_recovered_exactly(spec, shards, snap, none, "strict");
        EXPECT_TRUE(unchanged)
            << "strict read succeeded on a damaged file (SILENT)";
      } catch (const StoreError&) {
        EXPECT_FALSE(unchanged) << "strict read failed on an intact file";
      }

      // Recovering path: may be unavailable only when the header itself
      // is gone (typed error); otherwise every surviving block must be
      // exact and every lost one itemized.
      try {
        SnapshotReader reader(path);
        ReadReport report;
        const Snapshot snap = reader.read_recovering(report);
        if (strict_ok) {
          EXPECT_TRUE(report.complete);
          EXPECT_TRUE(report.lost.empty());
        } else {
          EXPECT_FALSE(report.complete);
        }
        if (report.footer_intact) {
          EXPECT_EQ(report.blocks_expected, total_blocks);
          EXPECT_EQ(report.blocks_loaded + report.lost.size(),
                    report.blocks_expected);
        }
        check_recovered_exactly(spec, shards, snap, report, "recovering");

        // verify() must agree with the recovering read, and digests of
        // intact columns must match the writer's.
        const SnapshotReader::VerifyResult v = SnapshotReader(path).verify();
        EXPECT_EQ(v.report.complete, report.complete);
        EXPECT_EQ(v.report.lost.size(), report.lost.size());
        for (std::size_t c = 0; c < spec.schema.size(); ++c) {
          if (v.column_intact[c] && v.report.footer_intact) {
            EXPECT_EQ(v.column_digests[c], digests[c])
                << "intact column " << c << " digest drifted (SILENT)";
          }
        }
      } catch (const StoreError& e) {
        // Header destroyed: the reader refused with a typed cause.
        EXPECT_TRUE(e.errc() == StoreErrc::kBadMagic ||
                    e.errc() == StoreErrc::kBadVersion ||
                    e.errc() == StoreErrc::kBadEndianness ||
                    e.errc() == StoreErrc::kHeaderCorrupt ||
                    e.errc() == StoreErrc::kTruncated ||
                    e.errc() == StoreErrc::kSchemaMismatch)
            << to_string(e.errc());
      }
      std::remove(path.c_str());
    }
  }
}

}  // namespace
}  // namespace resmodel::store

#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "store/format.h"
#include "util/checksum.h"

namespace resmodel::store {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

template <typename T>
std::span<const std::byte> bytes_of(const std::vector<T>& v) {
  return std::as_bytes(std::span<const T>(v));
}

/// Two-column, two-shard fixture everyone reuses.
struct Fixture {
  std::vector<double> x0{1.0, 2.5, -3.25};
  std::vector<std::int32_t> y0{7, -8, 9};
  std::vector<double> x1{4.0, 5.5};
  std::vector<std::int32_t> y1{10, 11};

  std::vector<ColumnSpec> schema() const {
    return {{"x", DType::kF64}, {"y", DType::kI32}};
  }

  void write(const std::string& path,
             std::vector<std::pair<std::string, std::string>> meta = {}) const {
    SnapshotWriter writer(path, "test.v1", schema());
    const std::vector<std::span<const std::byte>> shard0 = {bytes_of(x0),
                                                            bytes_of(y0)};
    writer.append_shard(shard0, x0.size());
    const std::vector<std::span<const std::byte>> shard1 = {bytes_of(x1),
                                                            bytes_of(y1)};
    writer.append_shard(shard1, x1.size());
    writer.finish(std::move(meta));
  }
};

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

StoreErrc reader_errc(const std::string& path) {
  try {
    SnapshotReader reader(path);
  } catch (const StoreError& e) {
    return e.errc();
  }
  ADD_FAILURE() << "SnapshotReader(" << path << ") did not throw";
  return StoreErrc::kInvalidArgument;
}

TEST(Snapshot, RoundTripsTwoShards) {
  const std::string path = temp_path("rt.snap");
  Fixture fx;
  fx.write(path, {{"origin", "unit-test"}});

  SnapshotReader reader(path);
  EXPECT_EQ(reader.kind(), "test.v1");
  EXPECT_TRUE(reader.footer_intact());
  EXPECT_EQ(reader.rows(), 5u);
  EXPECT_EQ(reader.shard_count(), 2u);
  ASSERT_EQ(reader.schema().size(), 2u);
  EXPECT_EQ(reader.schema()[0].name, "x");
  EXPECT_EQ(reader.schema()[1].dtype, DType::kI32);
  ASSERT_EQ(reader.metadata().size(), 1u);
  EXPECT_EQ(reader.metadata()[0].second, "unit-test");

  const Snapshot snap = reader.read_all();
  EXPECT_EQ(snap.rows, 5u);
  const Column* x = snap.find("x");
  ASSERT_NE(x, nullptr);
  const std::span<const double> xs = x->as<double>();
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_EQ(xs[0], 1.0);
  EXPECT_EQ(xs[3], 4.0);
  const Column* y = snap.find("y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->as<std::int32_t>()[4], 11);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(Snapshot, ShardReadsStreamIndependently) {
  const std::string path = temp_path("shards.snap");
  Fixture fx;
  fx.write(path);
  SnapshotReader reader(path);
  const Snapshot s0 = reader.read_shard(0);
  const Snapshot s1 = reader.read_shard(1);
  EXPECT_EQ(s0.rows, 3u);
  EXPECT_EQ(s1.rows, 2u);
  EXPECT_EQ(s1.find("x")->as<double>()[1], 5.5);
  EXPECT_THROW(reader.read_shard(2), StoreError);
}

TEST(Snapshot, WriterDigestsMatchReaderVerify) {
  const std::string path = temp_path("digest.snap");
  Fixture fx;
  std::vector<std::uint32_t> writer_digests;
  {
    SnapshotWriter writer(path, "test.v1", fx.schema());
    const std::vector<std::span<const std::byte>> shard0 = {bytes_of(fx.x0),
                                                            bytes_of(fx.y0)};
    writer.append_shard(shard0, fx.x0.size());
    const std::vector<std::span<const std::byte>> shard1 = {bytes_of(fx.x1),
                                                            bytes_of(fx.y1)};
    writer.append_shard(shard1, fx.x1.size());
    writer.finish();
    writer_digests = writer.column_digests();
  }
  SnapshotReader reader(path);
  const SnapshotReader::VerifyResult v = reader.verify();
  EXPECT_TRUE(v.report.complete);
  ASSERT_EQ(v.column_digests.size(), 2u);
  EXPECT_EQ(v.column_digests, writer_digests);

  // And they equal a direct CRC over the concatenated column bytes.
  std::vector<double> all_x = fx.x0;
  all_x.insert(all_x.end(), fx.x1.begin(), fx.x1.end());
  EXPECT_EQ(v.column_digests[0],
            util::crc32c(all_x.data(), all_x.size() * sizeof(double)));
}

TEST(Snapshot, EmptySnapshotRoundTrips) {
  const std::string path = temp_path("empty.snap");
  {
    SnapshotWriter writer(path, "test.v1",
                          {{"x", DType::kF64}, {"y", DType::kI32}});
    writer.finish();
  }
  SnapshotReader reader(path);
  EXPECT_EQ(reader.rows(), 0u);
  EXPECT_EQ(reader.shard_count(), 0u);
  const Snapshot snap = reader.read_all();
  EXPECT_EQ(snap.rows, 0u);
  ASSERT_EQ(snap.columns.size(), 2u);
  EXPECT_TRUE(snap.columns[0].data.empty());
}

TEST(Snapshot, WriterRejectsBadShapes) {
  const std::string path = temp_path("shapes.snap");
  EXPECT_THROW(SnapshotWriter(path, "test.v1", {}), StoreError);
  EXPECT_THROW(SnapshotWriter(path, "test.v1",
                              {{"x", DType::kF64}, {"x", DType::kI32}}),
               StoreError);

  SnapshotWriter writer(path, "test.v1", {{"x", DType::kF64}});
  std::vector<double> xs{1.0, 2.0};
  // Wrong column count.
  std::vector<std::span<const std::byte>> none;
  EXPECT_THROW(writer.append_shard(none, 2), StoreError);
  // Byte length disagrees with rows * dtype size.
  const std::vector<std::span<const std::byte>> cols = {bytes_of(xs)};
  EXPECT_THROW(writer.append_shard(cols, 3), StoreError);
}

TEST(Snapshot, UnfinishedWriterLeavesNoFile) {
  const std::string path = temp_path("abandoned.snap");
  std::remove(path.c_str());
  {
    SnapshotWriter writer(path, "test.v1", {{"x", DType::kF64}});
    std::vector<double> xs{1.0};
    const std::vector<std::span<const std::byte>> cols = {bytes_of(xs)};
    writer.append_shard(cols, 1);
    // No finish(): destruction must clean up.
  }
  std::ifstream dest(path);
  EXPECT_FALSE(dest.good());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

// --- header rejection -------------------------------------------------------

TEST(SnapshotHeader, RejectsBadMagic) {
  const std::string path = temp_path("badmagic.snap");
  Fixture().write(path);
  std::vector<unsigned char> bytes = slurp(path);
  bytes[0] ^= 0xff;
  spit(path, bytes);
  EXPECT_EQ(reader_errc(path), StoreErrc::kBadMagic);
}

TEST(SnapshotHeader, RejectsNonSnapshotFile) {
  const std::string path = temp_path("notasnap.snap");
  std::ofstream(path) << "id,created_day\n1,2\n";
  EXPECT_EQ(reader_errc(path), StoreErrc::kBadMagic);
}

TEST(SnapshotHeader, RejectsFutureVersion) {
  const std::string path = temp_path("future.snap");
  Fixture().write(path);
  std::vector<unsigned char> bytes = slurp(path);
  // Version is the u32 right after the 8-byte magic.
  std::uint32_t version;
  std::memcpy(&version, bytes.data() + 8, 4);
  ASSERT_EQ(version, kFormatVersion);
  version = kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &version, 4);
  spit(path, bytes);
  EXPECT_EQ(reader_errc(path), StoreErrc::kBadVersion);
}

TEST(SnapshotHeader, RejectsForeignEndianness) {
  const std::string path = temp_path("endian.snap");
  Fixture().write(path);
  std::vector<unsigned char> bytes = slurp(path);
  // Endian tag is the u32 after magic + version. Our host wrote
  // 0x01020304 natively; byte-reverse the field to fake a big-endian
  // origin.
  std::swap(bytes[12], bytes[15]);
  std::swap(bytes[13], bytes[14]);
  spit(path, bytes);
  EXPECT_EQ(reader_errc(path), StoreErrc::kBadEndianness);
}

TEST(SnapshotHeader, WriteTimeEndianGuard) {
  // The writer asserts the host is little-endian at write time; on the
  // x86/ARM64 hosts this suite runs on, the first header byte after a
  // successful write must therefore be the LSB of the magic ("R").
  const std::string path = temp_path("endianguard.snap");
  Fixture().write(path);
  const std::vector<unsigned char> bytes = slurp(path);
  ASSERT_GE(bytes.size(), 16u);
  EXPECT_EQ(bytes[0], 'R');
  EXPECT_EQ(bytes[15], 0x01);  // MSB of the 0x01020304 tag written LE
}

TEST(SnapshotHeader, RejectsTruncationInsideHeader) {
  const std::string path = temp_path("tinyheader.snap");
  Fixture().write(path);
  std::vector<unsigned char> bytes = slurp(path);
  bytes.resize(10);
  spit(path, bytes);
  EXPECT_EQ(reader_errc(path), StoreErrc::kTruncated);
}

TEST(SnapshotHeader, RejectsHeaderBitFlip) {
  const std::string path = temp_path("hdrflip.snap");
  Fixture().write(path);
  std::vector<unsigned char> bytes = slurp(path);
  bytes[20] ^= 0x10;  // inside the kind/column table region
  spit(path, bytes);
  const StoreErrc errc = reader_errc(path);
  EXPECT_TRUE(errc == StoreErrc::kHeaderCorrupt ||
              errc == StoreErrc::kSchemaMismatch)
      << to_string(errc);
}

// --- footer damage ----------------------------------------------------------

TEST(SnapshotFooter, TruncatedFooterFailsStrictButRecovers) {
  const std::string path = temp_path("tornfooter.snap");
  Fixture fx;
  fx.write(path);
  std::vector<unsigned char> bytes = slurp(path);
  bytes.resize(bytes.size() - kTrailerBytes - 3);  // tear trailer + footer tail
  spit(path, bytes);

  SnapshotReader reader(path);  // header is fine -> construction succeeds
  EXPECT_FALSE(reader.footer_intact());
  EXPECT_THROW(reader.rows(), StoreError);
  EXPECT_THROW(reader.read_all(), StoreError);

  ReadReport report;
  const Snapshot snap = reader.read_recovering(report);
  EXPECT_FALSE(report.footer_intact);
  EXPECT_FALSE(report.complete);  // totality is unprovable without a footer
  EXPECT_EQ(report.blocks_loaded, 4u);  // all 4 data blocks survive the scan
  EXPECT_EQ(snap.rows, 5u);
  EXPECT_EQ(snap.find("x")->as<double>()[4], 5.5);
}

TEST(SnapshotFooter, MetadataThrowsTypedErrorWhenFooterLost) {
  const std::string path = temp_path("nofootermeta.snap");
  Fixture().write(path);
  std::vector<unsigned char> bytes = slurp(path);
  bytes.resize(bytes.size() - 1);
  spit(path, bytes);
  SnapshotReader reader(path);
  try {
    (void)reader.metadata();
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_TRUE(e.errc() == StoreErrc::kTruncated ||
                e.errc() == StoreErrc::kFooterCorrupt)
        << to_string(e.errc());
  }
}

TEST(Snapshot, MissingFileThrowsCannotOpen) {
  EXPECT_EQ(reader_errc(temp_path("never_written.snap")),
            StoreErrc::kCannotOpen);
}

}  // namespace
}  // namespace resmodel::store

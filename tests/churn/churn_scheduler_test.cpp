#include "churn/churn_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "churn/interval_timeline.h"
#include "sim/schedule_state.h"
#include "synth/availability.h"
#include "util/rng.h"

namespace resmodel::churn {
namespace {

// One host with sessions [0,1) and [2,4), horizon 10 — every walk branch
// is reachable by choosing the work size.
IntervalTimeline two_session_host() {
  return IntervalTimeline::from_intervals({{{0.0, 1.0}, {2.0, 4.0}}}, 0.0,
                                          10.0);
}

TEST(CompletionPrimitives, CheckpointAccruesAcrossGaps) {
  const IntervalTimeline tl = two_session_host();
  // Fits inside the first session.
  EXPECT_DOUBLE_EQ(checkpoint_completion(tl, 0, 0.0, 0.5), 0.5);
  // Exactly fills the first session (inclusive boundary).
  EXPECT_DOUBLE_EQ(checkpoint_completion(tl, 0, 0.0, 1.0), 1.0);
  // Spills over the OFF gap: 1 day in [0,1), the last in [2,4).
  EXPECT_DOUBLE_EQ(checkpoint_completion(tl, 0, 0.0, 2.0), 3.0);
  // Outruns every session: 3 accrued by day 4, the rest after the horizon.
  EXPECT_DOUBLE_EQ(checkpoint_completion(tl, 0, 0.0, 4.0), 11.0);
  // Starting mid-session.
  EXPECT_DOUBLE_EQ(checkpoint_completion(tl, 0, 2.5, 1.0), 3.5);
  // Starting beyond the horizon: permanently ON.
  EXPECT_DOUBLE_EQ(checkpoint_completion(tl, 0, 12.0, 2.0), 14.0);
}

TEST(CompletionPrimitives, RestartBurnsShortSessions) {
  const IntervalTimeline tl = two_session_host();
  // Fits in the first session: no interruption, no waste.
  {
    const RestartOutcome out = restart_completion(tl, 0, 0.0, 0.75);
    EXPECT_DOUBLE_EQ(out.completion, 0.75);
    EXPECT_DOUBLE_EQ(out.worked_days, 0.75);
    EXPECT_EQ(out.interruptions, 0u);
  }
  // Too big for session one (1 day), fits session two: the first attempt
  // burns the whole first session.
  {
    const RestartOutcome out = restart_completion(tl, 0, 0.0, 1.5);
    EXPECT_DOUBLE_EQ(out.completion, 3.5);
    EXPECT_DOUBLE_EQ(out.worked_days, 2.5);  // 1 burned + 1.5 useful
    EXPECT_EQ(out.interruptions, 1u);
  }
  // Too big for every session: burns both, completes after the horizon.
  {
    const RestartOutcome out = restart_completion(tl, 0, 0.0, 5.0);
    EXPECT_DOUBLE_EQ(out.completion, 15.0);
    EXPECT_DOUBLE_EQ(out.worked_days, 8.0);  // 1 + 2 burned + 5 useful
    EXPECT_EQ(out.interruptions, 2u);
  }
}

sim::ScheduleState state_from_rates(std::vector<double> rates) {
  return sim::ScheduleState::from_rates(std::move(rates));
}

IntervalTimeline model_timeline(std::size_t hosts, std::uint64_t seed,
                                double horizon = 60.0) {
  util::Rng rng(seed);
  return IntervalTimeline::generate(synth::AvailabilityModel{}, hosts, 0.0,
                                    horizon, rng);
}

std::vector<double> random_rates(std::size_t n, std::uint64_t seed) {
  std::vector<double> rates(n);
  util::Rng rng(seed);
  for (double& r : rates) r = 50.0 + rng.uniform() * 5000.0;
  return rates;
}

std::vector<double> random_tasks(std::size_t n, std::uint64_t seed) {
  std::vector<double> tasks(n);
  util::Rng rng(seed);
  for (double& t : tasks) t = 200.0 + rng.uniform() * 4000.0;
  return tasks;
}

/// Blocked-vs-reference golden check at one kernel configuration: every
/// gate mode and column precision must reproduce the scalar oracle's
/// schedule bit for bit (the config trades pruning power, never results).
void expect_run_identical(std::vector<double> rates,
                          const IntervalTimeline& timeline,
                          const std::vector<double>& tasks,
                          InterruptionPolicy policy,
                          const ChurnSchedulerConfig& config = {}) {
  sim::ScheduleState fast = state_from_rates(rates);
  sim::ScheduleState ref = state_from_rates(std::move(rates));
  ChurnScheduler fast_sched(fast, timeline, config);
  ChurnScheduler ref_sched(ref, timeline, config);
  const ChurnScheduleTotals a = fast_sched.run(tasks, policy);
  const ChurnScheduleTotals b = ref_sched.run_reference(tasks, policy);
  EXPECT_EQ(a.makespan_days, b.makespan_days);
  EXPECT_EQ(a.total_cpu_days, b.total_cpu_days);
  EXPECT_EQ(a.wasted_cpu_days, b.wasted_cpu_days);
  EXPECT_EQ(a.interruptions, b.interruptions);
  for (std::size_t h = 0; h < fast.size(); ++h) {
    EXPECT_EQ(fast.busy_days[h], ref.busy_days[h]) << "host " << h;
    EXPECT_EQ(fast.free_at[h], ref.free_at[h]) << "host " << h;
  }
}

constexpr InterruptionPolicy kAllPolicies[] = {
    InterruptionPolicy::kCheckpoint,
    InterruptionPolicy::kRestart,
    InterruptionPolicy::kAbandon,
};

/// The kernel configurations the golden suites cycle through: the
/// shipping default (envelope gate, float32 columns, 8 levels), each
/// ablation arm, and the lookahead extremes.
std::vector<ChurnSchedulerConfig> golden_configs() {
  std::vector<ChurnSchedulerConfig> configs(5);
  configs[1].float32_columns = false;
  configs[2].gate_mode = GateMode::kBucket;
  configs[2].float32_columns = false;
  configs[3].lookahead_levels = 1;
  configs[4].lookahead_levels = kMaxLookaheadLevels;
  return configs;
}

TEST(ChurnScheduler, BlockedBitIdenticalToReference) {
  // A few hundred hosts spans multiple pruning blocks; heterogeneous
  // rates make the bound bite. Every gate configuration must match the
  // oracle exactly.
  const std::vector<double> rates = random_rates(300, 31);
  const IntervalTimeline timeline = model_timeline(300, 32);
  const std::vector<double> tasks = random_tasks(900, 33);
  for (const ChurnSchedulerConfig& config : golden_configs()) {
    for (const InterruptionPolicy policy : kAllPolicies) {
      expect_run_identical(rates, timeline, tasks, policy, config);
    }
  }
}

TEST(ChurnScheduler, GoldenDenseNearTies) {
  // Adversarial for the gates: rates within a relative 1e-9 of each
  // other and ONE shared timeline put hundreds of lanes inside every
  // margin band, so the fast path must resolve (not skip) all of them
  // to reproduce the oracle's smallest-index winner.
  std::vector<double> rates(200);
  for (std::size_t h = 0; h < rates.size(); ++h) {
    rates[h] = 1000.0 * (1.0 + 1e-9 * static_cast<double>(h % 7));
  }
  util::Rng rng(141);
  const synth::AvailabilityModel model;
  util::Rng host_rng = rng.fork();
  const auto intervals = model.generate(0.0, 60.0, host_rng);
  const IntervalTimeline timeline = IntervalTimeline::from_intervals(
      std::vector<std::vector<synth::AvailabilityInterval>>(200, intervals),
      0.0, 60.0);
  const std::vector<double> tasks = random_tasks(600, 143);
  for (const ChurnSchedulerConfig& config : golden_configs()) {
    for (const InterruptionPolicy policy : kAllPolicies) {
      expect_run_identical(rates, timeline, tasks, policy, config);
    }
  }
}

TEST(ChurnScheduler, GoldenStaleEnvelopeEpochs) {
  // Adversarial for the incremental envelope: a cluster of much faster
  // hosts pulls nearly every assignment into one block, cycling its
  // stale counter through many repair + full-rebuild epochs; the
  // schedule must stay bit-identical throughout.
  std::vector<double> rates = random_rates(192, 151);
  for (std::size_t h = 100; h < 108; ++h) {
    rates[h] = 80000.0 + 10.0 * static_cast<double>(h);
  }
  const IntervalTimeline timeline = model_timeline(192, 152);
  const std::vector<double> tasks =
      random_tasks(churn::BoundGate::kStaleLimit * 40, 153);
  for (const InterruptionPolicy policy : kAllPolicies) {
    expect_run_identical(rates, timeline, tasks, policy);
    ChurnSchedulerConfig f64;
    f64.float32_columns = false;
    expect_run_identical(rates, timeline, tasks, policy, f64);
  }
}

TEST(ChurnScheduler, LookaheadDepthIsAPerfKnob) {
  // Depth changes which exact expression resolves a deep spill, so
  // completions may move by ulps across depths — but never more, and
  // each depth is individually bit-identical to its own reference
  // (covered above). Guard the "never more" half.
  const std::vector<double> rates = random_rates(150, 161);
  const IntervalTimeline timeline = model_timeline(150, 162);
  const std::vector<double> tasks = random_tasks(400, 163);
  double makespan_at_depth1 = 0.0;
  for (const std::size_t levels : {std::size_t{1}, std::size_t{4},
                                   std::size_t{8}, kMaxLookaheadLevels}) {
    sim::ScheduleState state = state_from_rates(rates);
    ChurnSchedulerConfig config;
    config.lookahead_levels = levels;
    ChurnScheduler sched(state, timeline, config);
    const ChurnScheduleTotals totals =
        sched.run(tasks, InterruptionPolicy::kCheckpoint);
    if (levels == 1) {
      makespan_at_depth1 = totals.makespan_days;
    } else {
      EXPECT_NEAR(totals.makespan_days, makespan_at_depth1,
                  1e-9 * makespan_at_depth1);
    }
  }
}

TEST(ChurnScheduler, GoldenTieCases) {
  // Identical rates force exact completion-time ties on every task; the
  // winner must be the smallest host index in both paths.
  const std::vector<double> rates(130, 1000.0);
  // Identical timelines too: build one host's intervals and replicate.
  util::Rng rng(41);
  const synth::AvailabilityModel model;
  util::Rng host_rng = rng.fork();
  const auto intervals = model.generate(0.0, 60.0, host_rng);
  const IntervalTimeline timeline = IntervalTimeline::from_intervals(
      std::vector<std::vector<synth::AvailabilityInterval>>(130, intervals),
      0.0, 60.0);
  const std::vector<double> tasks = random_tasks(400, 43);
  for (const InterruptionPolicy policy : kAllPolicies) {
    expect_run_identical(rates, timeline, tasks, policy);
  }
  // And the tie winner really is host 0 for the very first task.
  sim::ScheduleState state = state_from_rates(rates);
  ChurnScheduler sched(state, timeline);
  sched.run(std::vector<double>{500.0}, InterruptionPolicy::kCheckpoint);
  EXPECT_GT(state.busy_days[0], 0.0);
}

TEST(ChurnScheduler, GoldenSingleHost) {
  const std::vector<double> rates = {750.0};
  const IntervalTimeline timeline = model_timeline(1, 51);
  const std::vector<double> tasks = random_tasks(50, 53);
  for (const InterruptionPolicy policy : kAllPolicies) {
    expect_run_identical(rates, timeline, tasks, policy);
  }
}

TEST(ChurnScheduler, GoldenMoreHostsThanTasks) {
  const std::vector<double> rates = random_rates(500, 61);
  const IntervalTimeline timeline = model_timeline(500, 62);
  const std::vector<double> tasks = random_tasks(20, 63);
  for (const InterruptionPolicy policy : kAllPolicies) {
    expect_run_identical(rates, timeline, tasks, policy);
  }
}

TEST(ChurnScheduler, CheckpointNeverWastesAndOthersCanWait) {
  const std::vector<double> rates = random_rates(120, 71);
  const IntervalTimeline timeline = model_timeline(120, 72);
  const std::vector<double> tasks = random_tasks(600, 73);

  sim::ScheduleState ckpt_state = state_from_rates(rates);
  ChurnScheduler ckpt(ckpt_state, timeline);
  const ChurnScheduleTotals c =
      ckpt.run(tasks, InterruptionPolicy::kCheckpoint);
  EXPECT_DOUBLE_EQ(c.wasted_cpu_days, 0.0);
  EXPECT_EQ(c.interruptions, 0u);

  sim::ScheduleState restart_state = state_from_rates(rates);
  ChurnScheduler restart(restart_state, timeline);
  const ChurnScheduleTotals r =
      restart.run(tasks, InterruptionPolicy::kRestart);
  // Heavy-tailed sessions: some tasks must have died at least once.
  EXPECT_GT(r.interruptions, 0u);
  EXPECT_GT(r.wasted_cpu_days, 0.0);
  // Restart can only be slower than checkpointing the same workload.
  EXPECT_GE(r.makespan_days, c.makespan_days * 0.999);

  sim::ScheduleState abandon_state = state_from_rates(rates);
  ChurnScheduler abandon(abandon_state, timeline);
  const ChurnScheduleTotals a =
      abandon.run(tasks, InterruptionPolicy::kAbandon);
  EXPECT_GT(a.interruptions, 0u);
  EXPECT_GT(a.wasted_cpu_days, 0.0);
  // Every task still ran to completion somewhere.
  EXPECT_GT(a.total_cpu_days, 0.0);
  EXPECT_GT(a.makespan_days, 0.0);
}

TEST(ChurnScheduler, ChurnMakespanDominatesAlwaysOnEct) {
  // Interval walking can only delay completions relative to scheduling
  // the same rates with no OFF time at all.
  const std::vector<double> rates = random_rates(100, 81);
  const std::vector<double> tasks = random_tasks(500, 83);
  const IntervalTimeline timeline = model_timeline(100, 82);

  sim::ScheduleState plain = state_from_rates(rates);
  const sim::DynamicScheduleTotals ect =
      sim::ect_schedule_blocked(plain, tasks);

  sim::ScheduleState churned = state_from_rates(rates);
  ChurnScheduler sched(churned, timeline);
  const ChurnScheduleTotals c =
      sched.run(tasks, InterruptionPolicy::kCheckpoint);
  EXPECT_GE(c.makespan_days, ect.makespan_days);
}

TEST(ChurnScheduler, ContinuesFromPreAdvancedState) {
  // Splitting a workload across two runs must equal one combined run —
  // the ready cursor picks up from free_at, like the sim/ kernels.
  const std::vector<double> rates = random_rates(50, 91);
  const IntervalTimeline timeline = model_timeline(50, 92);
  const std::vector<double> tasks = random_tasks(200, 93);

  sim::ScheduleState whole = state_from_rates(rates);
  ChurnScheduler whole_sched(whole, timeline);
  const ChurnScheduleTotals all =
      whole_sched.run(tasks, InterruptionPolicy::kCheckpoint);

  sim::ScheduleState split = state_from_rates(rates);
  const std::vector<double> first(tasks.begin(), tasks.begin() + 120);
  const std::vector<double> second(tasks.begin() + 120, tasks.end());
  ChurnScheduler sched_a(split, timeline);
  const ChurnScheduleTotals head =
      sched_a.run(first, InterruptionPolicy::kCheckpoint);
  ChurnScheduler sched_b(split, timeline);
  const ChurnScheduleTotals tail =
      sched_b.run(second, InterruptionPolicy::kCheckpoint);
  EXPECT_EQ(all.makespan_days,
            std::max(head.makespan_days, tail.makespan_days));
  for (std::size_t h = 0; h < split.size(); ++h) {
    EXPECT_EQ(whole.busy_days[h], split.busy_days[h]) << "host " << h;
    EXPECT_EQ(whole.free_at[h], split.free_at[h]) << "host " << h;
  }
}

TEST(ChurnScheduler, WarmSeedConstructorMatchesFreshDerivation) {
  // The sweep's warm start: cursor columns copied from a seed scheduler
  // must reproduce exactly the schedule a freshly-derived scheduler
  // produces, for every policy.
  const std::vector<double> rates = random_rates(170, 171);
  const IntervalTimeline timeline = model_timeline(170, 172);
  const std::vector<double> tasks = random_tasks(300, 173);
  sim::ScheduleState seed_state = state_from_rates(rates);
  const ChurnScheduler seed(seed_state, timeline);
  for (const InterruptionPolicy policy : kAllPolicies) {
    sim::ScheduleState fresh = state_from_rates(rates);
    ChurnScheduler fresh_sched(fresh, timeline);
    const ChurnScheduleTotals a = fresh_sched.run(tasks, policy);

    sim::ScheduleState warmed = state_from_rates(rates);
    ChurnScheduler warm_sched(warmed, seed);
    const ChurnScheduleTotals b = warm_sched.run(tasks, policy);

    EXPECT_EQ(a.makespan_days, b.makespan_days);
    EXPECT_EQ(a.total_cpu_days, b.total_cpu_days);
    EXPECT_EQ(a.wasted_cpu_days, b.wasted_cpu_days);
    EXPECT_EQ(a.interruptions, b.interruptions);
    for (std::size_t h = 0; h < fresh.size(); ++h) {
      EXPECT_EQ(fresh.free_at[h], warmed.free_at[h]) << "host " << h;
    }
  }
}

TEST(ChurnScheduler, RejectsMismatchedHostCounts) {
  sim::ScheduleState state = state_from_rates(random_rates(10, 95));
  const IntervalTimeline timeline = model_timeline(9, 96);
  EXPECT_THROW(ChurnScheduler(state, timeline), std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::churn

#include "churn/coupled_availability.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/independent.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace resmodel::churn {
namespace {

std::vector<double> lognormal_speeds(std::size_t n, std::uint64_t seed) {
  std::vector<double> speeds(n);
  util::Rng rng(seed);
  for (double& s : speeds) s = std::exp(rng.normal(8.0, 1.0));
  return speeds;
}

std::vector<double> on_lambdas(
    const std::vector<synth::AvailabilityParams>& params) {
  std::vector<double> lambdas;
  lambdas.reserve(params.size());
  for (const synth::AvailabilityParams& p : params) {
    lambdas.push_back(p.on_weibull_lambda);
  }
  return lambdas;
}

TEST(CoupledAvailability, HitsTargetSpearman) {
  const std::vector<double> speeds = lognormal_speeds(4000, 3);
  const synth::AvailabilityParams base;
  for (const double rho : {-0.5, 0.5, 0.8}) {
    AvailabilityCoupling coupling;
    coupling.speed_rho = rho;
    util::Rng rng(7);
    const auto params =
        couple_availability_to_speed(speeds, base, coupling, rng);
    const double measured = stats::spearman(speeds, on_lambdas(params));
    EXPECT_NEAR(measured, rho, 0.06) << "rho " << rho;
  }
}

TEST(CoupledAvailability, ZeroRhoIsUncorrelatedButDispersed) {
  const std::vector<double> speeds = lognormal_speeds(4000, 5);
  AvailabilityCoupling coupling;  // speed_rho = 0
  util::Rng rng(9);
  const auto params = couple_availability_to_speed(
      speeds, synth::AvailabilityParams{}, coupling, rng);
  const std::vector<double> lambdas = on_lambdas(params);
  EXPECT_NEAR(stats::spearman(speeds, lambdas), 0.0, 0.06);
  // The per-host dispersion is still there (only the coupling is off).
  EXPECT_GT(stats::stddev(lambdas), 0.0);
}

TEST(CoupledAvailability, MeanOnScaleIsApproximatelyPreserved) {
  // The multiplier exp(sigma*z - sigma^2/2) has mean 1, so the population
  // mean ON scale stays near base for any rho.
  const std::vector<double> speeds = lognormal_speeds(20000, 11);
  const synth::AvailabilityParams base;
  AvailabilityCoupling coupling;
  coupling.speed_rho = -0.5;
  util::Rng rng(13);
  const auto params =
      couple_availability_to_speed(speeds, base, coupling, rng);
  EXPECT_NEAR(stats::mean(on_lambdas(params)), base.on_weibull_lambda,
              base.on_weibull_lambda * 0.05);
}

TEST(CoupledAvailability, ZeroSigmaLeavesBaseParams) {
  const std::vector<double> speeds = lognormal_speeds(100, 15);
  const synth::AvailabilityParams base;
  AvailabilityCoupling coupling;
  coupling.speed_rho = 0.9;
  coupling.log_on_sigma = 0.0;
  util::Rng rng(17);
  const auto params =
      couple_availability_to_speed(speeds, base, coupling, rng);
  for (const synth::AvailabilityParams& p : params) {
    EXPECT_DOUBLE_EQ(p.on_weibull_lambda, base.on_weibull_lambda);
    EXPECT_DOUBLE_EQ(p.off_lognormal_mu, base.off_lognormal_mu);
  }
}

TEST(CoupledAvailability, DeterministicForFixedSeed) {
  const std::vector<double> speeds = lognormal_speeds(500, 19);
  AvailabilityCoupling coupling;
  coupling.speed_rho = 0.4;
  util::Rng a(21), b(21);
  const auto pa = couple_availability_to_speed(
      speeds, synth::AvailabilityParams{}, coupling, a);
  const auto pb = couple_availability_to_speed(
      speeds, synth::AvailabilityParams{}, coupling, b);
  for (std::size_t h = 0; h < pa.size(); ++h) {
    EXPECT_EQ(pa[h].on_weibull_lambda, pb[h].on_weibull_lambda);
  }
}

TEST(CoupledAvailability, ValidatesInputs) {
  const std::vector<double> speeds = lognormal_speeds(10, 23);
  util::Rng rng(1);
  AvailabilityCoupling bad_rho;
  bad_rho.speed_rho = 1.5;
  EXPECT_THROW(couple_availability_to_speed(
                   speeds, synth::AvailabilityParams{}, bad_rho, rng),
               std::invalid_argument);
  AvailabilityCoupling bad_sigma;
  bad_sigma.log_on_sigma = -0.1;
  EXPECT_THROW(couple_availability_to_speed(
                   speeds, synth::AvailabilityParams{}, bad_sigma, rng),
               std::invalid_argument);
  // The pluggable overload rejects a model of the wrong dimension.
  const model::Independent wrong_dim(3);
  EXPECT_THROW(couple_availability_to_speed(
                   speeds, synth::AvailabilityParams{}, wrong_dim, 0.5, rng),
               std::invalid_argument);
}

TEST(CoupledAvailability, PluggableModelOverloadWorks) {
  // An independent dimension-2 model is the rho = 0 case of the copula.
  const std::vector<double> speeds = lognormal_speeds(2000, 25);
  const model::Independent joint(2);
  util::Rng rng(27);
  const auto params = couple_availability_to_speed(
      speeds, synth::AvailabilityParams{}, joint, 0.8, rng);
  EXPECT_NEAR(stats::spearman(speeds, on_lambdas(params)), 0.0, 0.08);
}

TEST(CoupledAvailability, EmptySpeedColumn) {
  AvailabilityCoupling coupling;
  util::Rng rng(1);
  EXPECT_TRUE(couple_availability_to_speed(
                  {}, synth::AvailabilityParams{}, coupling, rng)
                  .empty());
}

}  // namespace
}  // namespace resmodel::churn

#include "churn/interval_timeline.h"

#include <gtest/gtest.h>

#include <vector>

#include "synth/availability.h"
#include "util/rng.h"

namespace resmodel::churn {
namespace {

// The serial contract IntervalTimeline::generate promises: fork once per
// host in host order, then generate each host from its own fork.
std::vector<std::vector<synth::AvailabilityInterval>> manual_intervals(
    const synth::AvailabilityModel& model, std::size_t hosts, double start,
    double end, util::Rng& rng) {
  std::vector<util::Rng> forks;
  for (std::size_t h = 0; h < hosts; ++h) forks.push_back(rng.fork());
  std::vector<std::vector<synth::AvailabilityInterval>> per_host(hosts);
  for (std::size_t h = 0; h < hosts; ++h) {
    per_host[h] = model.generate(start, end, forks[h]);
  }
  return per_host;
}

TEST(IntervalTimeline, MatchesPerHostGenerationExactly) {
  const synth::AvailabilityModel model;
  util::Rng rng_tl(5), rng_manual(5);
  const IntervalTimeline timeline =
      IntervalTimeline::generate(model, 40, 0.0, 120.0, rng_tl);
  const auto manual = manual_intervals(model, 40, 0.0, 120.0, rng_manual);

  ASSERT_EQ(timeline.host_count(), 40u);
  for (std::size_t h = 0; h < 40; ++h) {
    const auto intervals = timeline.host_intervals(h);
    ASSERT_EQ(intervals.size(), manual[h].size()) << "host " << h;
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      EXPECT_EQ(intervals[i].start_day, manual[h][i].start_day);
      EXPECT_EQ(intervals[i].end_day, manual[h][i].end_day);
    }
  }
  // Both consumed the caller's stream identically (one fork per host).
  EXPECT_EQ(rng_tl.next(), rng_manual.next());
}

TEST(IntervalTimeline, ThreadCountInvariant) {
  const synth::AvailabilityModel model;
  util::Rng r1(9), r4(9);
  const IntervalTimeline serial =
      IntervalTimeline::generate(model, 300, 0.0, 80.0, r1,
                                 synth::StartMode::kOnAtStart, /*threads=*/1);
  const IntervalTimeline parallel =
      IntervalTimeline::generate(model, 300, 0.0, 80.0, r4,
                                 synth::StartMode::kOnAtStart, /*threads=*/4);
  ASSERT_EQ(serial.total_intervals(), parallel.total_intervals());
  for (std::size_t h = 0; h < serial.host_count(); ++h) {
    ASSERT_EQ(serial.interval_count(h), parallel.interval_count(h));
    const auto s = serial.host_intervals(h);
    const auto p = parallel.host_intervals(h);
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(s[i].start_day, p[i].start_day);
      EXPECT_EQ(s[i].end_day, p[i].end_day);
    }
  }
}

TEST(IntervalTimeline, RoundTripsVectorOfIntervals) {
  // The satellite round-trip check: vector-of-intervals -> CSR columns ->
  // vector-of-intervals is the identity, including an empty host.
  std::vector<std::vector<synth::AvailabilityInterval>> per_host = {
      {{0.0, 1.5}, {2.0, 4.0}},
      {},
      {{5.0, 9.0}},
  };
  const IntervalTimeline timeline =
      IntervalTimeline::from_intervals(per_host, 0.0, 10.0);
  ASSERT_EQ(timeline.host_count(), 3u);
  EXPECT_EQ(timeline.total_intervals(), 3u);
  EXPECT_EQ(timeline.interval_count(0), 2u);
  EXPECT_EQ(timeline.interval_count(1), 0u);
  EXPECT_EQ(timeline.interval_count(2), 1u);
  for (std::size_t h = 0; h < 3; ++h) {
    const auto intervals = timeline.host_intervals(h);
    ASSERT_EQ(intervals.size(), per_host[h].size());
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      EXPECT_DOUBLE_EQ(intervals[i].start_day, per_host[h][i].start_day);
      EXPECT_DOUBLE_EQ(intervals[i].end_day, per_host[h][i].end_day);
    }
  }
}

TEST(IntervalTimeline, AdvanceCursorFindsTheRightInterval) {
  const std::vector<std::vector<synth::AvailabilityInterval>> per_host = {
      {{0.0, 1.0}, {2.0, 4.0}, {6.0, 7.0}}};
  const IntervalTimeline tl =
      IntervalTimeline::from_intervals(per_host, 0.0, 10.0);
  EXPECT_EQ(tl.advance(0, 0.0), 0u);   // inside first
  EXPECT_EQ(tl.advance(0, 0.999), 0u);
  EXPECT_EQ(tl.advance(0, 1.0), 1u);   // exactly at an exclusive end
  EXPECT_EQ(tl.advance(0, 1.5), 1u);   // in the gap
  EXPECT_EQ(tl.advance(0, 3.0), 1u);   // inside second
  EXPECT_EQ(tl.advance(0, 6.5), 2u);
  EXPECT_EQ(tl.advance(0, 7.0), 3u);   // past everything
}

TEST(IntervalTimeline, NextOnMatchesSemantics) {
  const std::vector<std::vector<synth::AvailabilityInterval>> per_host = {
      {{0.0, 1.0}, {2.0, 4.0}},
      {}};
  const IntervalTimeline tl =
      IntervalTimeline::from_intervals(per_host, 0.0, 10.0);
  // Inside an interval: now.
  EXPECT_DOUBLE_EQ(tl.next_on(0, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(tl.next_on(0, 2.0), 2.0);
  // In a gap: the next start.
  EXPECT_DOUBLE_EQ(tl.next_on(0, 1.5), 2.0);
  // At an exclusive interval end: the next start.
  EXPECT_DOUBLE_EQ(tl.next_on(0, 1.0), 2.0);
  // Past the last interval but inside the horizon: ON resumes at the
  // horizon (beyond-horizon convention).
  EXPECT_DOUBLE_EQ(tl.next_on(0, 5.0), 10.0);
  // Beyond the horizon: permanently ON.
  EXPECT_DOUBLE_EQ(tl.next_on(0, 12.5), 12.5);
  // A host with no intervals is OFF until the horizon.
  EXPECT_DOUBLE_EQ(tl.next_on(1, 3.0), 10.0);
}

TEST(IntervalTimeline, FractionMatchesAvailabilityFraction) {
  const synth::AvailabilityModel model;
  util::Rng rng(11);
  const IntervalTimeline tl =
      IntervalTimeline::generate(model, 20, 0.0, 150.0, rng);
  for (std::size_t h = 0; h < tl.host_count(); ++h) {
    const auto intervals = tl.host_intervals(h);
    EXPECT_DOUBLE_EQ(tl.fraction(h, 0.0, 150.0),
                     synth::availability_fraction(intervals, 0.0, 150.0));
    EXPECT_DOUBLE_EQ(tl.fraction(h, 10.0, 60.0),
                     synth::availability_fraction(intervals, 10.0, 60.0));
  }
  // Degenerate windows are zero.
  EXPECT_DOUBLE_EQ(tl.fraction(0, 5.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.fraction(0, 9.0, 3.0), 0.0);
}

TEST(IntervalTimeline, PerHostParamsOverload) {
  // Hosts with wildly different ON scales must show it in their measured
  // fractions; identical params must reproduce the shared-model stream.
  synth::AvailabilityParams steady;
  steady.on_weibull_lambda = 20.0;  // very long sessions
  synth::AvailabilityParams flaky;
  flaky.on_weibull_lambda = 0.02;  // very short sessions
  const std::vector<synth::AvailabilityParams> params = {steady, flaky};
  util::Rng rng(13);
  const IntervalTimeline tl =
      IntervalTimeline::generate(params, 0.0, 200.0, rng);
  EXPECT_GT(tl.fraction(0, 0.0, 200.0), tl.fraction(1, 0.0, 200.0));

  const std::vector<synth::AvailabilityParams> same = {
      synth::AvailabilityParams{}, synth::AvailabilityParams{}};
  util::Rng ra(17), rb(17);
  const IntervalTimeline from_params =
      IntervalTimeline::generate(same, 0.0, 100.0, ra);
  const IntervalTimeline from_model = IntervalTimeline::generate(
      synth::AvailabilityModel{}, 2, 0.0, 100.0, rb);
  for (std::size_t h = 0; h < 2; ++h) {
    ASSERT_EQ(from_params.interval_count(h), from_model.interval_count(h));
    const auto a = from_params.host_intervals(h);
    const auto b = from_model.host_intervals(h);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].start_day, b[i].start_day);
      EXPECT_EQ(a[i].end_day, b[i].end_day);
    }
  }
}

TEST(IntervalTimeline, RejectsInvalidParams) {
  synth::AvailabilityParams bad;
  bad.on_weibull_k = -1.0;
  const std::vector<synth::AvailabilityParams> params = {
      synth::AvailabilityParams{}, bad};
  util::Rng rng(1);
  EXPECT_THROW(IntervalTimeline::generate(params, 0.0, 10.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::churn

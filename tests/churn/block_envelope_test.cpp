// Soundness properties of the churn pruning gate (block_envelope.h):
// every bound the gate hands the scheduler — per-lane sweep values,
// per-block envelope queries, coarse-row entries — must, after deflation
// by the gate's margin, never exceed the exact double completion the
// reference kernel computes. The float32 round-trip property the issue
// calls out is exactly this with float columns: f32 bound * margin <=
// f64 completion, for every host and task, including after the gate has
// been advanced through staleness-epoch territory by a real run.
#include "churn/block_envelope.h"

#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "churn/churn_scheduler.h"
#include "churn/interval_timeline.h"
#include "sim/schedule_state.h"
#include "synth/availability.h"
#include "util/rng.h"

namespace resmodel::churn {
namespace {

IntervalTimeline model_timeline(std::size_t hosts, std::uint64_t seed,
                                double horizon = 60.0) {
  util::Rng rng(seed);
  return IntervalTimeline::generate(synth::AvailabilityModel{}, hosts, 0.0,
                                    horizon, rng);
}

std::vector<double> random_rates(std::size_t n, std::uint64_t seed) {
  std::vector<double> rates(n);
  util::Rng rng(seed);
  for (double& r : rates) r = 50.0 + rng.uniform() * 5000.0;
  return rates;
}

std::vector<double> random_tasks(std::size_t n, std::uint64_t seed) {
  std::vector<double> tasks(n);
  util::Rng rng(seed);
  for (double& t : tasks) t = 200.0 + rng.uniform() * 4000.0;
  return tasks;
}

constexpr InterruptionPolicy kGatedPolicies[] = {
    InterruptionPolicy::kCheckpoint,
    InterruptionPolicy::kRestart,
};

struct GateVariant {
  GateMode mode;
  bool float32;
  std::size_t levels;
};

const GateVariant kVariants[] = {
    {GateMode::kEnvelope, true, 8},   // shipping default
    {GateMode::kEnvelope, false, 8},
    {GateMode::kBucket, false, 8},
    {GateMode::kEnvelope, true, 1},   // minimum lookahead
    {GateMode::kEnvelope, true, 3},
    {GateMode::kBucket, true, 4},
};

/// Asserts, for every host and probe task, lane/envelope/coarse bound
/// soundness against the exact completion of the CURRENT cursor state.
void expect_gate_sound(ChurnScheduler& sched, sim::ScheduleState& state,
                       InterruptionPolicy policy,
                       std::span<const double> probes) {
  const BoundGate& gate = sched.gate();
  const double margin = gate.margin();
  constexpr std::size_t kBlock = sim::ScheduleState::kBlockSize;
  for (const double task : probes) {
    std::vector<double> block_min(state.block_count(),
                                  std::numeric_limits<double>::infinity());
    for (std::size_t h = 0; h < state.size(); ++h) {
      const double done = sched.completion_for_test(h, task, policy);
      const std::size_t pos = state.ect_pos[h];
      const double lane = gate.lane_bound(pos, task);
      EXPECT_LE(lane * margin, done)
          << "lane bound unsound: host " << h << " task " << task;
      block_min[pos / kBlock] = std::min(block_min[pos / kBlock], done);
    }
    for (std::size_t b = 0; b < state.block_count(); ++b) {
      EXPECT_LE(gate.block_bound(b, task) * margin, block_min[b])
          << "block bound unsound: block " << b << " task " << task;
      const std::size_t bucket = gate.bucket_of(task);
      const double edge = gate.bucket_edge(bucket);
      EXPECT_LE(edge, task);
      const double coarse = gate.coarse_row(bucket)[b] +
                            (task - edge) * state.ect_block_min_inv[b];
      EXPECT_LE(coarse * margin, block_min[b])
          << "coarse bound unsound: block " << b << " task " << task;
    }
  }
}

TEST(BoundGate, AllBoundsSoundOnFreshState) {
  const std::size_t n = 300;
  const std::vector<double> rates = random_rates(n, 11);
  const IntervalTimeline timeline = model_timeline(n, 12);
  const std::vector<double> tasks = random_tasks(64, 13);
  for (const GateVariant& variant : kVariants) {
    for (const InterruptionPolicy policy : kGatedPolicies) {
      sim::ScheduleState state =
          sim::ScheduleState::from_rates(std::vector<double>(rates));
      ChurnSchedulerConfig config;
      config.gate_mode = variant.mode;
      config.float32_columns = variant.float32;
      config.lookahead_levels = variant.levels;
      ChurnScheduler sched(state, timeline, config);
      sched.prime_gate_for_test(tasks, policy);
      expect_gate_sound(sched, state, policy, tasks);
    }
  }
}

// The float32 round-trip property after a real run: the gate has been
// through per-assignment repairs AND full staleness epochs (the run
// funnels hundreds of tasks through a few fast blocks), and every
// retained bound must still deflate below the exact completion of the
// post-run cursor state.
TEST(BoundGate, BoundsStaySoundThroughStalenessEpochs) {
  const std::size_t n = 192;  // three blocks
  std::vector<double> rates = random_rates(n, 21);
  // A handful of much faster hosts concentrates assignments into one
  // block, cycling its stale counter through multiple rebuild epochs.
  for (std::size_t h = 0; h < 8; ++h) rates[h] = 60000.0 + 100.0 * h;
  const IntervalTimeline timeline = model_timeline(n, 22);
  const std::vector<double> tasks = random_tasks(BoundGate::kStaleLimit * 24,
                                                 23);
  const std::vector<double> probes = random_tasks(32, 24);
  for (const InterruptionPolicy policy : kGatedPolicies) {
    for (const bool f32 : {true, false}) {
      sim::ScheduleState state =
          sim::ScheduleState::from_rates(std::vector<double>(rates));
      ChurnSchedulerConfig config;
      config.float32_columns = f32;
      ChurnScheduler sched(state, timeline, config);
      sched.run(tasks, policy);
      // Probes must lie inside the run's bucket range for coarse-row
      // queries (same sampler, so they do).
      expect_gate_sound(sched, state, policy, probes);
    }
  }
}

TEST(BoundGate, EnvelopeHasKnotsAndBucketDoesNot) {
  const std::size_t n = 130;
  const std::vector<double> rates = random_rates(n, 31);
  const IntervalTimeline timeline = model_timeline(n, 32);
  const std::vector<double> tasks = random_tasks(16, 33);

  sim::ScheduleState state =
      sim::ScheduleState::from_rates(std::vector<double>(rates));
  ChurnScheduler sched(state, timeline, {});
  sched.prime_gate_for_test(tasks, InterruptionPolicy::kCheckpoint);
  ASSERT_EQ(sched.gate().mode(), GateMode::kEnvelope);
  for (std::size_t b = 0; b < state.block_count(); ++b) {
    const std::size_t knots = sched.gate().knot_count(b);
    EXPECT_GE(knots, 1u);  // the t = 0 anchor at least
    EXPECT_LE(knots, BoundGate::kKnotCapacity);
  }

  sim::ScheduleState bstate =
      sim::ScheduleState::from_rates(std::vector<double>(rates));
  ChurnSchedulerConfig bucket;
  bucket.gate_mode = GateMode::kBucket;
  ChurnScheduler bsched(bstate, timeline, bucket);
  bsched.prime_gate_for_test(tasks, InterruptionPolicy::kCheckpoint);
  EXPECT_EQ(bsched.gate().knot_count(0), 0u);
}

TEST(BoundGate, BucketEdgesCoverEveryPositiveTask) {
  const std::size_t n = 80;
  const std::vector<double> rates = random_rates(n, 41);
  const IntervalTimeline timeline = model_timeline(n, 42);
  const std::vector<double> tasks = {50.0, 900.0, 4000.0};
  sim::ScheduleState state =
      sim::ScheduleState::from_rates(std::vector<double>(rates));
  ChurnScheduler sched(state, timeline, {});
  sched.prime_gate_for_test(tasks, InterruptionPolicy::kCheckpoint);
  const BoundGate& gate = sched.gate();
  // Edge 0 is exactly 0: tasks below the smallest workload size still
  // anchor at a valid bucket (min-ready bound).
  EXPECT_EQ(gate.bucket_edge(0), 0.0);
  EXPECT_EQ(gate.bucket_of(1e-9), 0u);
  // The smallest workload size anchors at its own edge (edge 1 == tmin).
  EXPECT_EQ(gate.bucket_edge(gate.bucket_of(50.0)), 50.0);
  for (const double t : {0.5, 49.9, 50.0, 2000.0, 4000.0, 9000.0}) {
    const std::size_t bucket = gate.bucket_of(t);
    ASSERT_LT(bucket, BoundGate::kBuckets);
    EXPECT_LE(gate.bucket_edge(bucket), t);
  }
}

TEST(ChurnSchedulerConfigValidation, RejectsOutOfRangeLevels) {
  const std::size_t n = 10;
  sim::ScheduleState state =
      sim::ScheduleState::from_rates(random_rates(n, 51));
  const IntervalTimeline timeline = model_timeline(n, 52);
  ChurnSchedulerConfig zero;
  zero.lookahead_levels = 0;
  EXPECT_THROW(ChurnScheduler(state, timeline, zero), std::invalid_argument);
  ChurnSchedulerConfig deep;
  deep.lookahead_levels = kMaxLookaheadLevels + 1;
  EXPECT_THROW(ChurnScheduler(state, timeline, deep), std::invalid_argument);
  ChurnSchedulerConfig max_ok;
  max_ok.lookahead_levels = kMaxLookaheadLevels;
  EXPECT_NO_THROW(ChurnScheduler(state, timeline, max_ok));
}

}  // namespace
}  // namespace resmodel::churn

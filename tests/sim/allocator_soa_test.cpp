// Golden equivalence of the columnar log-domain allocator against the
// retained pow-domain reference implementation, plus the determinism and
// thread-invariance guarantees of the SoA path.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/host_generator.h"
#include "core/model_params.h"
#include "sim/allocator.h"
#include "synth/population.h"
#include "util/rng.h"

namespace resmodel::sim {
namespace {

void expect_equivalent(const AllocationResult& reference,
                       const AllocationResult& soa) {
  ASSERT_EQ(reference.assignment.size(), soa.assignment.size());
  for (std::size_t h = 0; h < reference.assignment.size(); ++h) {
    ASSERT_EQ(reference.assignment[h], soa.assignment[h]) << "host " << h;
  }
  ASSERT_EQ(reference.hosts_assigned.size(), soa.hosts_assigned.size());
  for (std::size_t a = 0; a < reference.hosts_assigned.size(); ++a) {
    EXPECT_EQ(reference.hosts_assigned[a], soa.hosts_assigned[a]);
    const double expected = reference.total_utility[a];
    EXPECT_NEAR(soa.total_utility[a], expected,
                1e-9 * std::max(1.0, std::fabs(expected)));
  }
}

TEST(AllocatorSoA, MatchesReferenceOnGeneratedHosts) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(42);
  const core::GeneratedHostBatch batch = generator.generate_batch(
      util::ModelDate::from_ymd(2010, 6, 1), 3000, rng);
  const HostResourcesSoA soa = HostResourcesSoA::from_batch(batch);
  const std::vector<HostResources> aos = soa.to_hosts();

  const auto apps = paper_applications();
  expect_equivalent(allocate_round_robin_reference(apps, aos),
                    allocate_round_robin(apps, soa));
}

TEST(AllocatorSoA, MatchesReferenceOnTraceSnapshot) {
  synth::PopulationConfig config;
  config.seed = 7;
  config.target_active_hosts = 800;
  const trace::TraceStore store = synth::generate_population(config);
  const HostResourcesSoA soa = HostResourcesSoA::from_snapshot(
      store.snapshot_plausible(util::ModelDate::from_ymd(2009, 6, 1)));
  ASSERT_GT(soa.size(), 100u);
  const std::vector<HostResources> aos = soa.to_hosts();

  const auto apps = paper_applications();
  expect_equivalent(allocate_round_robin_reference(apps, aos),
                    allocate_round_robin(apps, soa));
}

TEST(AllocatorSoA, AoSWrapperDelegatesToColumnarPath) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(3);
  const HostResourcesSoA soa = HostResourcesSoA::from_batch(
      generator.generate_batch(util::ModelDate::from_ymd(2008, 3, 1), 500,
                               rng));
  const std::vector<HostResources> aos = soa.to_hosts();

  const auto apps = paper_applications();
  const AllocationResult via_soa = allocate_round_robin(apps, soa);
  const AllocationResult via_aos = allocate_round_robin(apps, aos);
  EXPECT_EQ(via_soa.assignment, via_aos.assignment);
  EXPECT_EQ(via_soa.hosts_assigned, via_aos.hosts_assigned);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    EXPECT_DOUBLE_EQ(via_soa.total_utility[a], via_aos.total_utility[a]);
  }
}

TEST(AllocatorSoA, TiesBreakByHostIndex) {
  // All hosts identical: every preference list degenerates to pure ties,
  // so the deterministic order is by host index and the round-robin turn
  // order pins assignment[h] = h mod A — on every standard library.
  const auto apps = paper_applications();
  std::vector<HostResources> hosts(41, {2.0, 2048.0, 4000.0, 1800.0, 50.0});
  const HostResourcesSoA soa = HostResourcesSoA::from_hosts(hosts);

  const AllocationResult r = allocate_round_robin(apps, soa);
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    EXPECT_EQ(r.assignment[h], h % apps.size()) << "host " << h;
  }
  // The reference path applies the same tie-break.
  expect_equivalent(allocate_round_robin_reference(apps, hosts), r);
}

TEST(AllocatorSoA, DuplicateBlocksStayDeterministic) {
  // Blocks of duplicated hosts interleaved with distinct ones: repeated
  // runs must agree bit for bit.
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(11);
  HostResourcesSoA soa = HostResourcesSoA::from_batch(
      generator.generate_batch(util::ModelDate::from_ymd(2010, 1, 1), 64,
                               rng));
  std::vector<HostResources> hosts = soa.to_hosts();
  for (int copy = 0; copy < 3; ++copy) {
    for (std::size_t i = 0; i < 64; ++i) hosts.push_back(hosts[i]);
  }
  const HostResourcesSoA dup = HostResourcesSoA::from_hosts(hosts);

  const auto apps = paper_applications();
  const AllocationResult first = allocate_round_robin(apps, dup);
  const AllocationResult second = allocate_round_robin(apps, dup);
  EXPECT_EQ(first.assignment, second.assignment);
  expect_equivalent(allocate_round_robin_reference(apps, hosts), first);
}

TEST(AllocatorSoA, RefinesScoresBelowFloatResolution) {
  // Hosts whose utilities differ by ~1e-10 relative: the 32-bit sort keys
  // collide (float resolution is ~1e-7), so the exact-score refinement
  // pass must reproduce the reference ordering. Descending disk order
  // makes the naive index tie-break the *wrong* answer.
  const ApplicationSpec disk_app{"disk", 0.0, 0.0, 0.0, 0.0, 1.0};
  const ApplicationSpec cpu_app{"cpu", 0.0, 0.0, 1.0, 0.0, 0.0};
  std::vector<HostResources> hosts;
  for (int i = 0; i < 40; ++i) {
    hosts.push_back({1.0, 1024.0, 2000.0 + 2000.0 * i * 1e-10, 1000.0,
                     100.0 - 100.0 * i * 1e-10});
  }
  const std::vector<ApplicationSpec> apps = {disk_app, cpu_app};
  expect_equivalent(allocate_round_robin_reference(apps, hosts),
                    allocate_round_robin(apps,
                                         HostResourcesSoA::from_hosts(hosts)));
}

TEST(AllocatorSoA, ThreadCountInvariant) {
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(21);
  const HostResourcesSoA soa = HostResourcesSoA::from_batch(
      generator.generate_batch(util::ModelDate::from_ymd(2010, 9, 1), 4000,
                               rng));

  const auto apps = paper_applications();
  const AllocationResult one = allocate_round_robin(apps, soa, 1);
  for (int threads : {2, 4, 7}) {
    const AllocationResult many = allocate_round_robin(apps, soa, threads);
    EXPECT_EQ(one.assignment, many.assignment);
    EXPECT_EQ(one.hosts_assigned, many.hosts_assigned);
    for (std::size_t a = 0; a < apps.size(); ++a) {
      EXPECT_DOUBLE_EQ(one.total_utility[a], many.total_utility[a]);
    }
  }
}

TEST(AllocatorSoA, LazyLogColumnsMatchPrecomputed) {
  // A hand-assembled SoA without precompute_logs() must allocate the same
  // way as one whose adapter filled the log columns.
  const core::HostGenerator generator(core::paper_params());
  util::Rng rng(5);
  const HostResourcesSoA ready = HostResourcesSoA::from_batch(
      generator.generate_batch(util::ModelDate::from_ymd(2007, 1, 1), 300,
                               rng));
  HostResourcesSoA bare;
  bare.cores = ready.cores;
  bare.memory_mb = ready.memory_mb;
  bare.dhrystone_mips = ready.dhrystone_mips;
  bare.whetstone_mips = ready.whetstone_mips;
  bare.disk_avail_gb = ready.disk_avail_gb;
  ASSERT_FALSE(bare.logs_ready());

  const auto apps = paper_applications();
  const AllocationResult a = allocate_round_robin(apps, ready);
  const AllocationResult b = allocate_round_robin(apps, bare);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace resmodel::sim

// Tests of the fault-tolerant work-distribution layer (sim/replication.h)
// through the public bag-of-tasks entry points: quorum validation,
// deadline re-issue, fault injection, and the determinism / oracle
// contracts the rest of the tree already obeys.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/host_generator.h"
#include "sim/bag_of_tasks.h"
#include "util/rng.h"

namespace resmodel::sim {
namespace {

std::vector<HostResources> model_hosts(std::size_t n, std::uint64_t seed) {
  const core::HostGenerator gen(core::paper_params());
  util::Rng rng(seed);
  const auto generated =
      gen.generate_many(util::ModelDate::from_ymd(2010, 1, 1), n, rng);
  std::vector<HostResources> hosts;
  for (const core::GeneratedHost& g : generated) {
    hosts.push_back({static_cast<double>(g.n_cores), g.memory_mb,
                     g.dhrystone_mips, g.whetstone_mips, g.disk_avail_gb});
  }
  return hosts;
}

BagOfTasksConfig replicated_config(std::uint32_t quorum,
                                   std::uint32_t replicas) {
  BagOfTasksConfig config;
  config.task_count = 800;
  config.replication.enabled = true;
  config.replication.quorum = quorum;
  config.replication.replicas = replicas;
  return config;
}

void expect_replica_partition(const ReplicationOutcome& o) {
  EXPECT_EQ(o.replicas_issued,
            o.replicas_correct + o.replicas_corrupt + o.replicas_crashed +
                o.replicas_missed_deadline + o.replicas_duplicate_host);
}

TEST(Replication, OneOfOneNoFaultsMatchesPlainChurnRun) {
  // The golden-oracle contract: replication 1/1 with no deadline and no
  // faults issues one replica per task in task order — the identical
  // select/commit sequence as the plain churn run, on the identical
  // sampled workload and interval realization. Bit-identical results.
  const auto hosts = model_hosts(150, 3);
  BagOfTasksConfig plain;
  plain.task_count = 600;
  BagOfTasksConfig replicated = plain;
  replicated.replication.enabled = true;
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kChurnEctCheckpoint,
        SchedulingPolicy::kChurnEctRestart,
        SchedulingPolicy::kChurnEctAbandon}) {
    util::Rng r1(11), r2(11);
    const BagOfTasksResult a = run_bag_of_tasks(hosts, plain, policy, r1);
    const BagOfTasksResult b =
        run_bag_of_tasks(hosts, replicated, policy, r2);
    EXPECT_EQ(a.makespan_days, b.makespan_days);
    EXPECT_EQ(a.total_cpu_days, b.total_cpu_days);
    EXPECT_EQ(a.wasted_cpu_days, b.wasted_cpu_days);
    EXPECT_EQ(a.interruptions, b.interruptions);
    EXPECT_EQ(a.hosts_used, b.hosts_used);
    EXPECT_EQ(b.replication.tasks_issued, 600u);
    EXPECT_EQ(b.replication.tasks_validated, 600u);
    EXPECT_TRUE(b.replication.conserves_tasks());
  }
}

TEST(Replication, ConservationAcrossPoliciesAndMixes) {
  // The zero-silently-lost-tasks invariant: every issued task resolves to
  // validated, invalid, or missed-deadline — across every ECT-family
  // policy and a spread of fault mixes.
  const auto hosts = model_hosts(200, 5);
  FaultMixConfig crashy;
  crashy.crash_fraction = 0.3;
  FaultMixConfig corrupting;
  corrupting.corrupter_fraction = 0.25;
  FaultMixConfig mixed;
  mixed.crash_fraction = 0.1;
  mixed.straggler_fraction = 0.1;
  mixed.corrupter_fraction = 0.1;
  for (const FaultMixConfig& mix : {crashy, corrupting, mixed}) {
    for (const SchedulingPolicy policy :
         {SchedulingPolicy::kDynamicEct,
          SchedulingPolicy::kChurnEctCheckpoint,
          SchedulingPolicy::kChurnEctRestart,
          SchedulingPolicy::kChurnEctAbandon}) {
      BagOfTasksConfig config = replicated_config(2, 3);
      config.task_count = 500;
      config.fault_mix = mix;
      config.replication.deadline_days = 5.0;
      config.replication.max_retries = 3;
      util::Rng rng(17);
      const BagOfTasksResult result =
          run_bag_of_tasks(hosts, config, policy, rng);
      EXPECT_EQ(result.replication.tasks_issued, 500u);
      EXPECT_TRUE(result.replication.conserves_tasks());
      expect_replica_partition(result.replication);
    }
  }
}

TEST(Replication, ScalarOracleMatchesFastPathBitwise) {
  // Same run, scalar reference kernels vs the auto-dispatched fast path:
  // identical makespans AND identical outcome counters, to the bit.
  const auto hosts = model_hosts(180, 9);
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kDynamicEct,
        SchedulingPolicy::kChurnEctCheckpoint,
        SchedulingPolicy::kChurnEctAbandon}) {
    BagOfTasksConfig fast = replicated_config(2, 3);
    fast.fault_mix.crash_fraction = 0.1;
    fast.fault_mix.corrupter_fraction = 0.1;
    fast.replication.deadline_days = 4.0;
    BagOfTasksConfig scalar = fast;
    scalar.backend = backend::Backend::kScalar;
    util::Rng r1(23), r2(23);
    const BagOfTasksResult f = run_bag_of_tasks(hosts, fast, policy, r1);
    const BagOfTasksResult s = run_bag_of_tasks(hosts, scalar, policy, r2);
    EXPECT_EQ(f.makespan_days, s.makespan_days);
    EXPECT_EQ(f.total_cpu_days, s.total_cpu_days);
    EXPECT_EQ(f.replication.tasks_validated, s.replication.tasks_validated);
    EXPECT_EQ(f.replication.tasks_invalid, s.replication.tasks_invalid);
    EXPECT_EQ(f.replication.tasks_missed_deadline,
              s.replication.tasks_missed_deadline);
    EXPECT_EQ(f.replication.replicas_crashed, s.replication.replicas_crashed);
    EXPECT_EQ(f.replication.reissues, s.replication.reissues);
    EXPECT_EQ(f.replication.wasted_replica_cpu_days,
              s.replication.wasted_replica_cpu_days);
    EXPECT_EQ(f.replication.reissue_latency_p99_days,
              s.replication.reissue_latency_p99_days);
  }
}

TEST(Replication, SweepOutcomesAreThreadCountInvariant) {
  const auto host_vec = model_hosts(120, 13);
  std::vector<SweepPopulation> pops;
  pops.push_back({"P", HostResourcesSoA::from_hosts(host_vec)});

  PolicySweepConfig sweep;
  sweep.policies = {SchedulingPolicy::kDynamicEct,
                    SchedulingPolicy::kChurnEctCheckpoint};
  sweep.task_counts = {300, 600};
  sweep.base.replication.enabled = true;
  sweep.base.replication.quorum = 2;
  sweep.base.replication.replicas = 3;
  sweep.base.replication.deadline_days = 4.0;
  sweep.base.fault_mix.crash_fraction = 0.15;
  sweep.base.fault_mix.corrupter_fraction = 0.05;
  sweep.workload_seed = 77;

  sweep.threads = 1;
  const PolicySweepResult serial = run_policy_sweep(pops, sweep);
  sweep.threads = 4;
  const PolicySweepResult parallel = run_policy_sweep(pops, sweep);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const ReplicationOutcome& a = serial.cells[i].result.replication;
    const ReplicationOutcome& b = parallel.cells[i].result.replication;
    EXPECT_EQ(serial.cells[i].result.makespan_days,
              parallel.cells[i].result.makespan_days);
    EXPECT_EQ(a.tasks_validated, b.tasks_validated);
    EXPECT_EQ(a.tasks_invalid, b.tasks_invalid);
    EXPECT_EQ(a.tasks_missed_deadline, b.tasks_missed_deadline);
    EXPECT_EQ(a.replicas_issued, b.replicas_issued);
    EXPECT_EQ(a.reissues, b.reissues);
    EXPECT_EQ(a.wasted_replica_cpu_days, b.wasted_replica_cpu_days);
    EXPECT_TRUE(a.conserves_tasks());
  }
}

TEST(Replication, AllCorruptersYieldInvalidNeverSilentLoss) {
  // With every host corrupting, no quorum of matching correct digests can
  // ever form; each task must resolve to invalid (graceful degradation),
  // never hang or vanish.
  const auto hosts = model_hosts(100, 21);
  BagOfTasksConfig config = replicated_config(2, 3);
  config.task_count = 200;
  config.fault_mix.corrupter_fraction = 1.0;
  config.replication.deadline_days = 50.0;
  config.replication.max_retries = 1;
  util::Rng rng(31);
  const BagOfTasksResult result =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicEct, rng);
  EXPECT_EQ(result.replication.tasks_validated, 0u);
  // Most tasks fail the quorum outright; a deadline-tail few may time out
  // instead — but every task resolves to one of the two failure codes.
  EXPECT_GT(result.replication.tasks_invalid, 150u);
  EXPECT_EQ(result.replication.tasks_invalid +
                result.replication.tasks_missed_deadline,
            200u);
  EXPECT_TRUE(result.replication.conserves_tasks());
  EXPECT_GT(result.replication.replicas_corrupt, 0u);
}

TEST(Replication, QuorumRedundancySurvivesCorruptionSingleCopyDoesNot) {
  // 25% corrupters: a single unreplicated copy loses about a quarter of
  // the tasks; 2-of-3 quorum replication recovers nearly all of them.
  const auto hosts = model_hosts(200, 27);
  BagOfTasksConfig single = replicated_config(1, 1);
  single.fault_mix.corrupter_fraction = 0.25;
  BagOfTasksConfig quorum = replicated_config(2, 3);
  quorum.fault_mix.corrupter_fraction = 0.25;
  util::Rng r1(41), r2(41);
  const BagOfTasksResult s =
      run_bag_of_tasks(hosts, single, SchedulingPolicy::kDynamicEct, r1);
  const BagOfTasksResult q =
      run_bag_of_tasks(hosts, quorum, SchedulingPolicy::kDynamicEct, r2);
  EXPECT_TRUE(s.replication.conserves_tasks());
  EXPECT_TRUE(q.replication.conserves_tasks());
  EXPECT_GT(s.replication.tasks_invalid, 800u / 8);  // ~25% corrupted
  // Quorum replication recovers tasks a single copy loses — though less
  // than independence would predict, because ECT concentrates the three
  // replicas of a task on the same fast (and possibly corrupt) hosts.
  EXPECT_GT(q.replication.tasks_validated, s.replication.tasks_validated);
  EXPECT_LT(q.replication.tasks_invalid, s.replication.tasks_invalid);
  // Redundancy has a price, and the accounting must show it.
  EXPECT_GT(q.replication.wasted_replica_cpu_days,
            s.replication.wasted_replica_cpu_days);
}

TEST(Replication, ImpossibleDeadlineExhaustsRetriesGracefully) {
  // A deadline no host can meet: every round times out, re-issues happen
  // exactly max_retries times per task, and every task ends
  // missed-deadline — bounded, accounted, no infinite loop.
  const auto hosts = model_hosts(80, 33);
  BagOfTasksConfig config = replicated_config(1, 1);
  config.task_count = 150;
  config.replication.deadline_days = 1e-7;
  config.replication.max_retries = 2;
  util::Rng rng(51);
  const BagOfTasksResult result =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicEct, rng);
  EXPECT_EQ(result.replication.tasks_validated, 0u);
  EXPECT_EQ(result.replication.tasks_missed_deadline, 150u);
  EXPECT_EQ(result.replication.reissues, 150u * 2);
  EXPECT_TRUE(result.replication.conserves_tasks());
  EXPECT_GT(result.replication.replicas_missed_deadline, 0u);
}

TEST(Replication, DeadlinedRunReportsReissueLatencies) {
  // A tight-but-meetable deadline with crashy hosts: some tasks need a
  // second round, and their validation latencies populate the
  // percentiles (p50 <= p90 <= p99, all past the first-round window).
  const auto hosts = model_hosts(150, 35);
  BagOfTasksConfig config = replicated_config(2, 3);
  config.fault_mix.crash_fraction = 0.3;
  config.replication.deadline_days = 2.0;
  util::Rng rng(61);
  const BagOfTasksResult result = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kChurnEctCheckpoint, rng);
  ASSERT_TRUE(result.replication.conserves_tasks());
  if (result.replication.reissues > 0 &&
      result.replication.reissue_latency_p50_days > 0.0) {
    EXPECT_LE(result.replication.reissue_latency_p50_days,
              result.replication.reissue_latency_p90_days);
    EXPECT_LE(result.replication.reissue_latency_p90_days,
              result.replication.reissue_latency_p99_days);
    EXPECT_GT(result.replication.reissue_latency_p50_days, 2.0);
  }
}

TEST(Replication, DeterministicForFixedSeed) {
  const auto hosts = model_hosts(100, 43);
  BagOfTasksConfig config = replicated_config(2, 3);
  config.fault_mix.crash_fraction = 0.1;
  config.fault_mix.straggler_fraction = 0.1;
  config.replication.deadline_days = 3.0;
  util::Rng r1(71), r2(71);
  const BagOfTasksResult a = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kChurnEctRestart, r1);
  const BagOfTasksResult b = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kChurnEctRestart, r2);
  EXPECT_EQ(a.makespan_days, b.makespan_days);
  EXPECT_EQ(a.replication.tasks_validated, b.replication.tasks_validated);
  EXPECT_EQ(a.replication.replicas_crashed, b.replication.replicas_crashed);
  EXPECT_EQ(a.replication.wasted_replica_cpu_days,
            b.replication.wasted_replica_cpu_days);
}

TEST(Replication, RejectsNonEctPoliciesAndBadConfigs) {
  const auto hosts = model_hosts(50, 47);
  BagOfTasksConfig config = replicated_config(2, 3);
  util::Rng rng(81);
  EXPECT_THROW(run_bag_of_tasks(hosts, config,
                                SchedulingPolicy::kStaticRoundRobin, rng),
               std::invalid_argument);
  EXPECT_THROW(
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicPull, rng),
      std::invalid_argument);
  BagOfTasksConfig bad_quorum = replicated_config(4, 3);
  EXPECT_THROW(run_bag_of_tasks(hosts, bad_quorum,
                                SchedulingPolicy::kDynamicEct, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::sim

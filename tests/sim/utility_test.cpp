#include "sim/utility.h"

#include <gtest/gtest.h>

#include <cmath>

namespace resmodel::sim {
namespace {

HostResources typical_host() {
  HostResources h;
  h.cores = 2;
  h.memory_mb = 2048;
  h.dhrystone_mips = 4000;
  h.whetstone_mips = 1800;
  h.disk_avail_gb = 50;
  return h;
}

TEST(CobbDouglas, KnownProduct) {
  const ApplicationSpec app{"test", 1.0, 0.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(cobb_douglas_utility(app, typical_host()), 2.0);
}

TEST(CobbDouglas, ExponentsCompose) {
  const ApplicationSpec app{"test", 0.5, 0.5, 0.0, 0.0, 0.0};
  const HostResources h = typical_host();
  EXPECT_NEAR(cobb_douglas_utility(app, h),
              std::sqrt(h.cores) * std::sqrt(h.memory_mb), 1e-9);
}

TEST(CobbDouglas, ZeroExponentIgnoresResource) {
  const ApplicationSpec app{"test", 0.3, 0.0, 0.2, 0.1, 0.0};
  HostResources a = typical_host();
  HostResources b = a;
  b.memory_mb = 1e6;  // ignored: beta = 0
  b.disk_avail_gb = 1e6;
  EXPECT_DOUBLE_EQ(cobb_douglas_utility(app, a), cobb_douglas_utility(app, b));
}

TEST(CobbDouglas, MonotoneInEachResource) {
  const auto apps = paper_applications();
  for (const ApplicationSpec& app : apps) {
    HostResources more = typical_host();
    more.cores *= 2;
    more.memory_mb *= 2;
    more.dhrystone_mips *= 2;
    more.whetstone_mips *= 2;
    more.disk_avail_gb *= 2;
    EXPECT_GT(cobb_douglas_utility(app, more),
              cobb_douglas_utility(app, typical_host()))
        << app.name;
  }
}

TEST(CobbDouglas, DecreasingReturnsToScale) {
  // All Table-IX exponent sums are < 1.2 but the key property per resource
  // is alpha < 1: doubling one resource less than doubles utility.
  const ApplicationSpec app{"seti", 0.05, 0.1, 0.2, 0.4, 0.05};
  HostResources twice_cores = typical_host();
  twice_cores.cores *= 2;
  const double base = cobb_douglas_utility(app, typical_host());
  const double up = cobb_douglas_utility(app, twice_cores);
  EXPECT_GT(up, base);
  EXPECT_LT(up, base * 2.0);
}

TEST(CobbDouglas, ZeroResourceDoesNotAnnihilate) {
  const ApplicationSpec app{"test", 0.2, 0.2, 0.2, 0.2, 0.2};
  HostResources h = typical_host();
  h.disk_avail_gb = 0.0;
  EXPECT_GT(cobb_douglas_utility(app, h), 0.0);
}

TEST(PaperApplications, TableIXExactValues) {
  const auto apps = paper_applications();
  ASSERT_EQ(apps.size(), 4u);
  EXPECT_EQ(apps[0].name, "SETI@home");
  EXPECT_DOUBLE_EQ(apps[0].alpha, 0.05);
  EXPECT_DOUBLE_EQ(apps[0].delta, 0.4);
  EXPECT_EQ(apps[1].name, "Folding@home");
  EXPECT_DOUBLE_EQ(apps[1].alpha, 0.4);
  EXPECT_EQ(apps[2].name, "Climate Prediction");
  EXPECT_DOUBLE_EQ(apps[2].epsilon, 0.15);
  EXPECT_EQ(apps[3].name, "P2P");
  EXPECT_DOUBLE_EQ(apps[3].epsilon, 0.7);
}

TEST(PaperApplications, P2pPrefersDiskOverCpu) {
  const auto apps = paper_applications();
  const ApplicationSpec& p2p = apps[3];
  HostResources big_disk = typical_host();
  big_disk.disk_avail_gb = 500;
  HostResources fast_cpu = typical_host();
  fast_cpu.whetstone_mips = 18000;
  EXPECT_GT(cobb_douglas_utility(p2p, big_disk),
            cobb_douglas_utility(p2p, fast_cpu));
}

TEST(PaperApplications, FoldingPrefersCoresOverDisk) {
  const auto apps = paper_applications();
  const ApplicationSpec& folding = apps[1];
  HostResources many_cores = typical_host();
  many_cores.cores = 16;
  HostResources big_disk = typical_host();
  big_disk.disk_avail_gb = 400;
  EXPECT_GT(cobb_douglas_utility(folding, many_cores),
            cobb_douglas_utility(folding, big_disk));
}

}  // namespace
}  // namespace resmodel::sim

#include "sim/baseline_models.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "synth/population.h"

namespace resmodel::sim {
namespace {

const trace::TraceStore& shared_trace() {
  static const trace::TraceStore kTrace = [] {
    synth::PopulationConfig config;
    config.seed = 99;
    config.target_active_hosts = 2500;
    return synth::generate_population(config);
  }();
  return kTrace;
}

std::vector<util::ModelDate> yearly_dates() {
  std::vector<util::ModelDate> dates;
  for (int y = 2006; y <= 2010; ++y) {
    dates.push_back(util::ModelDate::from_ymd(y, 1, 1));
  }
  return dates;
}

struct Columns {
  std::vector<double> cores, memory, whet, dhry, disk;
};

Columns columns(const std::vector<HostResources>& hosts) {
  Columns c;
  for (const HostResources& h : hosts) {
    c.cores.push_back(h.cores);
    c.memory.push_back(h.memory_mb);
    c.whet.push_back(h.whetstone_mips);
    c.dhry.push_back(h.dhrystone_mips);
    c.disk.push_back(h.disk_avail_gb);
  }
  return c;
}

TEST(ToHostResources, PreservesColumns) {
  const auto snap = shared_trace().snapshot(util::ModelDate::from_ymd(2009, 1, 1));
  const auto hosts = to_host_resources(snap);
  ASSERT_EQ(hosts.size(), snap.size());
  EXPECT_DOUBLE_EQ(hosts[0].cores, snap.cores[0]);
  EXPECT_DOUBLE_EQ(hosts[0].disk_avail_gb, snap.disk_avail_gb[0]);
}

TEST(SynthesizeSoA, MatchesAoSPathForEveryModel) {
  // Both synthesis paths must consume the rng identically, so the same
  // seed yields bit-identical hosts — column layout is the only change.
  const auto date = util::ModelDate::from_ymd(2010, 6, 1);
  const CorrelatedModel correlated(core::paper_params());
  const auto normal =
      NormalDistributionModel::fit(shared_trace(), yearly_dates());
  const GridResourceModel grid(core::paper_params(), 1.5);
  const HostSynthesisModel* models[] = {&correlated, &normal, &grid};
  for (const HostSynthesisModel* model : models) {
    util::Rng rng_aos(77);
    util::Rng rng_soa(77);
    const auto aos = model->synthesize(date, 400, rng_aos);
    const HostResourcesSoA soa = model->synthesize_soa(date, 400, rng_soa);
    ASSERT_EQ(soa.size(), aos.size()) << model->name();
    ASSERT_TRUE(soa.logs_ready()) << model->name();
    for (std::size_t i = 0; i < aos.size(); ++i) {
      ASSERT_DOUBLE_EQ(soa.cores[i], aos[i].cores) << model->name();
      ASSERT_DOUBLE_EQ(soa.memory_mb[i], aos[i].memory_mb) << model->name();
      ASSERT_DOUBLE_EQ(soa.whetstone_mips[i], aos[i].whetstone_mips)
          << model->name();
      ASSERT_DOUBLE_EQ(soa.dhrystone_mips[i], aos[i].dhrystone_mips)
          << model->name();
      ASSERT_DOUBLE_EQ(soa.disk_avail_gb[i], aos[i].disk_avail_gb)
          << model->name();
    }
  }
}

TEST(CorrelatedModel, PreservesResourceCorrelations) {
  const CorrelatedModel model(core::paper_params());
  util::Rng rng(1);
  const auto hosts =
      model.synthesize(util::ModelDate::from_ymd(2010, 6, 1), 30000, rng);
  const Columns c = columns(hosts);
  EXPECT_GT(stats::pearson(c.cores, c.memory), 0.5);
  EXPECT_GT(stats::pearson(c.whet, c.dhry), 0.35);
}

TEST(NormalModel, ProducesUncorrelatedResources) {
  const auto model = NormalDistributionModel::fit(shared_trace(), yearly_dates());
  util::Rng rng(2);
  const auto hosts =
      model.synthesize(util::ModelDate::from_ymd(2010, 6, 1), 30000, rng);
  const Columns c = columns(hosts);
  EXPECT_LT(std::fabs(stats::pearson(c.cores, c.memory)), 0.05);
  EXPECT_LT(std::fabs(stats::pearson(c.whet, c.dhry)), 0.05);
}

TEST(NormalModel, MeansTrackActualData) {
  const auto model = NormalDistributionModel::fit(shared_trace(), yearly_dates());
  util::Rng rng(3);
  const auto date = util::ModelDate::from_ymd(2010, 1, 1);
  const auto hosts = model.synthesize(date, 30000, rng);
  const auto snap = shared_trace().snapshot(date);
  const Columns c = columns(hosts);
  // The linear extrapolation is anchored on the actual yearly means, so at
  // a grid date the synthesized means should be close (clamping biases
  // cores slightly upward).
  EXPECT_NEAR(stats::mean(c.memory), stats::mean(snap.memory_mb),
              stats::mean(snap.memory_mb) * 0.12);
  EXPECT_NEAR(stats::mean(c.whet), stats::mean(snap.whetstone_mips),
              stats::mean(snap.whetstone_mips) * 0.10);
}

TEST(NormalModel, AllResourcesPositive) {
  const auto model = NormalDistributionModel::fit(shared_trace(), yearly_dates());
  util::Rng rng(4);
  for (const HostResources& h :
       model.synthesize(util::ModelDate::from_ymd(2006, 1, 1), 5000, rng)) {
    ASSERT_GE(h.cores, 1.0);
    ASSERT_GT(h.memory_mb, 0.0);
    ASSERT_GT(h.whetstone_mips, 0.0);
    ASSERT_GT(h.dhrystone_mips, 0.0);
    ASSERT_GT(h.disk_avail_gb, 0.0);
  }
}

TEST(NormalModel, CoresAreIntegers) {
  const auto model = NormalDistributionModel::fit(shared_trace(), yearly_dates());
  util::Rng rng(5);
  for (const HostResources& h :
       model.synthesize(util::ModelDate::from_ymd(2010, 1, 1), 1000, rng)) {
    ASSERT_DOUBLE_EQ(h.cores, std::round(h.cores));
  }
}

TEST(GridModel, OverestimatesAvailableDisk) {
  // The Kee model tracks total capacity, so its "available disk"
  // systematically exceeds the correlated model's (the Figure-15 P2P
  // effect).
  const GridResourceModel grid(core::paper_params(), 0.5);
  const CorrelatedModel correlated(core::paper_params());
  util::Rng rng_a(6), rng_b(7);
  const auto date = util::ModelDate::from_ymd(2010, 6, 1);
  const auto grid_hosts = grid.synthesize(date, 20000, rng_a);
  const auto corr_hosts = correlated.synthesize(date, 20000, rng_b);
  EXPECT_GT(stats::mean(columns(grid_hosts).disk),
            1.4 * stats::mean(columns(corr_hosts).disk));
}

TEST(GridModel, AgeMixtureLowersMeansVsFreshHosts) {
  const GridResourceModel grid(core::paper_params(), 0.6);
  const CorrelatedModel fresh(core::paper_params());
  util::Rng rng_a(8), rng_b(9);
  const auto date = util::ModelDate::from_ymd(2010, 6, 1);
  const auto grid_hosts = grid.synthesize(date, 20000, rng_a);
  const auto fresh_hosts = fresh.synthesize(date, 20000, rng_b);
  EXPECT_LT(stats::mean(columns(grid_hosts).whet),
            stats::mean(columns(fresh_hosts).whet));
}

TEST(GridModel, MemoryIsPowerOfTwoPerCore) {
  const GridResourceModel grid(core::paper_params(), 0.5);
  util::Rng rng(10);
  for (const HostResources& h :
       grid.synthesize(util::ModelDate::from_ymd(2009, 1, 1), 2000, rng)) {
    const double per_core = h.memory_mb / h.cores;
    const double log2v = std::log2(per_core);
    ASSERT_NEAR(log2v, std::round(log2v), 1e-9) << per_core;
  }
}

TEST(GridModel, NamesAreStable) {
  EXPECT_EQ(CorrelatedModel(core::paper_params()).name(), "Correlated Model");
  EXPECT_EQ(GridResourceModel(core::paper_params(), 0.5).name(), "Grid Model");
  const auto normal =
      NormalDistributionModel::fit(shared_trace(), yearly_dates());
  EXPECT_EQ(normal.name(), "Normal Distribution Model");
}

}  // namespace
}  // namespace resmodel::sim

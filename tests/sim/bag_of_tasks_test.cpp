#include "sim/bag_of_tasks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "churn/block_envelope.h"
#include "core/host_generator.h"
#include "util/rng.h"

namespace resmodel::sim {
namespace {

std::vector<HostResources> model_hosts(std::size_t n, std::uint64_t seed) {
  const core::HostGenerator gen(core::paper_params());
  util::Rng rng(seed);
  const auto generated =
      gen.generate_many(util::ModelDate::from_ymd(2010, 1, 1), n, rng);
  std::vector<HostResources> hosts;
  for (const core::GeneratedHost& g : generated) {
    hosts.push_back({static_cast<double>(g.n_cores), g.memory_mb,
                     g.dhrystone_mips, g.whetstone_mips, g.disk_avail_gb});
  }
  return hosts;
}

std::vector<HostResources> uniform_hosts(std::size_t n, double whet) {
  std::vector<HostResources> hosts(n);
  for (HostResources& h : hosts) {
    h.cores = 1;
    h.whetstone_mips = whet;
    h.dhrystone_mips = whet * 2;
    h.memory_mb = 1024;
    h.disk_avail_gb = 10;
  }
  return hosts;
}

TEST(BagOfTasks, RejectsBadInputs) {
  util::Rng rng(1);
  BagOfTasksConfig config;
  EXPECT_THROW(run_bag_of_tasks(std::vector<HostResources>{}, config,
                                SchedulingPolicy::kDynamicPull, rng),
               std::invalid_argument);
  config.task_count = 0;
  EXPECT_THROW(run_bag_of_tasks(uniform_hosts(2, 1000), config,
                                SchedulingPolicy::kDynamicPull, rng),
               std::invalid_argument);
}

TEST(BagOfTasks, HomogeneousHostsAllPoliciesAgree) {
  // Identical hosts: any sensible policy spreads evenly, and the makespan
  // is ~ total work / aggregate rate.
  util::Rng r1(2), r2(2), r3(2);
  BagOfTasksConfig config;
  config.task_count = 4000;
  const auto hosts = uniform_hosts(50, 1000.0);
  const auto rr = run_bag_of_tasks(hosts, config,
                                   SchedulingPolicy::kStaticRoundRobin, r1);
  const auto sw = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kStaticSpeedWeighted, r2);
  const auto pull =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicPull, r3);
  EXPECT_NEAR(rr.makespan_days / sw.makespan_days, 1.0, 0.1);
  EXPECT_NEAR(rr.makespan_days / pull.makespan_days, 1.0, 0.1);
  // Conservation: identical seeds -> identical workload and rates.
  EXPECT_NEAR(rr.total_cpu_days, sw.total_cpu_days, 1e-9);
  EXPECT_NEAR(rr.total_cpu_days, pull.total_cpu_days, 1e-9);
}

TEST(BagOfTasks, HeterogeneousHostsPunishKnowledgeFreeStriping) {
  // On the real (correlated) host mixture, blind striping is dragged down
  // by the slowest hosts; dynamic pull and speed-weighted dealing are far
  // better. This is the motivation-section claim made executable.
  util::Rng r1(3), r2(3), r3(3);
  BagOfTasksConfig config;
  config.task_count = 5000;
  const auto hosts = model_hosts(300, 4);
  const auto rr = run_bag_of_tasks(hosts, config,
                                   SchedulingPolicy::kStaticRoundRobin, r1);
  const auto sw = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kStaticSpeedWeighted, r2);
  const auto ect =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicEct, r3);
  EXPECT_GT(rr.makespan_days, 1.5 * ect.makespan_days);
  EXPECT_GT(rr.makespan_days, 1.5 * sw.makespan_days);
}

TEST(BagOfTasks, DynamicEctBeatsOrMatchesStaticSpeedWeighted) {
  util::Rng r1(5), r2(5);
  BagOfTasksConfig config;
  config.task_count = 3000;
  const auto hosts = model_hosts(200, 6);
  const auto sw = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kStaticSpeedWeighted, r1);
  const auto ect =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicEct, r2);
  EXPECT_LE(ect.makespan_days, sw.makespan_days * 1.05);
}

TEST(BagOfTasks, NaivePullSuffersStragglers) {
  // The correlated model occasionally produces near-zero-speed hosts (the
  // clamped normal tail); knowledge-free pull hands them tasks and the
  // makespan explodes relative to completion-time-aware ECT.
  util::Rng r1(5), r2(5);
  BagOfTasksConfig config;
  config.task_count = 3000;
  const auto hosts = model_hosts(200, 6);
  const auto pull =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicPull, r1);
  const auto ect =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicEct, r2);
  EXPECT_GE(pull.makespan_days, ect.makespan_days);
}

TEST(BagOfTasks, MakespanBoundsHold) {
  util::Rng rng(7);
  BagOfTasksConfig config;
  config.task_count = 1000;
  const auto hosts = model_hosts(100, 8);
  const auto result =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicPull, rng);
  // Makespan >= total work / aggregate capacity (perfect balance bound)
  // and >= the mean busy time.
  EXPECT_GE(result.makespan_days + 1e-9, result.mean_host_busy_days);
  EXPECT_GT(result.makespan_days, 0.0);
  EXPECT_EQ(result.hosts_used, hosts.size());  // more tasks than hosts
  EXPECT_NEAR(result.max_host_busy_days, result.makespan_days,
              result.makespan_days * 0.5);
}

TEST(BagOfTasks, AvailabilityOverlayIncreasesMakespan) {
  BagOfTasksConfig plain;
  plain.task_count = 2000;
  BagOfTasksConfig derated = plain;
  derated.model_availability = true;
  const auto hosts = model_hosts(150, 9);
  util::Rng r1(10), r2(10);
  const auto fast =
      run_bag_of_tasks(hosts, plain, SchedulingPolicy::kDynamicPull, r1);
  const auto slow =
      run_bag_of_tasks(hosts, derated, SchedulingPolicy::kDynamicPull, r2);
  EXPECT_GT(slow.makespan_days, fast.makespan_days);
}

TEST(BagOfTasks, PolicyNamesAreStable) {
  EXPECT_EQ(to_string(SchedulingPolicy::kStaticRoundRobin),
            "static round-robin");
  EXPECT_EQ(to_string(SchedulingPolicy::kStaticSpeedWeighted),
            "static speed-weighted");
  EXPECT_EQ(to_string(SchedulingPolicy::kDynamicPull), "dynamic pull");
  EXPECT_EQ(to_string(SchedulingPolicy::kDynamicEct), "dynamic ECT");
}

TEST(BagOfTasks, DeterministicForFixedSeed) {
  BagOfTasksConfig config;
  config.task_count = 500;
  const auto hosts = model_hosts(50, 11);
  util::Rng r1(12), r2(12);
  const auto a =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicPull, r1);
  const auto b =
      run_bag_of_tasks(hosts, config, SchedulingPolicy::kDynamicPull, r2);
  EXPECT_DOUBLE_EQ(a.makespan_days, b.makespan_days);
  EXPECT_DOUBLE_EQ(a.total_cpu_days, b.total_cpu_days);
}

TEST(BagOfTasks, SoAOverloadMatchesAoSPath) {
  // The columnar overload promises identical semantics and rng
  // consumption: same seed, same hosts => bit-identical results, with and
  // without the availability overlay (one rng fork per host).
  const std::vector<HostResources> hosts = model_hosts(120, 9);
  const HostResourcesSoA soa = HostResourcesSoA::from_hosts(hosts);
  BagOfTasksConfig config;
  config.task_count = 800;
  const SchedulingPolicy policies[] = {
      SchedulingPolicy::kStaticRoundRobin,
      SchedulingPolicy::kStaticSpeedWeighted,
      SchedulingPolicy::kDynamicPull,
      SchedulingPolicy::kDynamicEct,
  };
  for (const bool availability : {false, true}) {
    config.model_availability = availability;
    for (const SchedulingPolicy policy : policies) {
      util::Rng rng_aos(31);
      util::Rng rng_soa(31);
      const BagOfTasksResult aos =
          run_bag_of_tasks(hosts, config, policy, rng_aos);
      const BagOfTasksResult via_soa =
          run_bag_of_tasks(soa, config, policy, rng_soa);
      EXPECT_DOUBLE_EQ(aos.makespan_days, via_soa.makespan_days);
      EXPECT_DOUBLE_EQ(aos.total_cpu_days, via_soa.total_cpu_days);
      EXPECT_DOUBLE_EQ(aos.max_host_busy_days, via_soa.max_host_busy_days);
      EXPECT_EQ(aos.hosts_used, via_soa.hosts_used);
    }
  }
}

void expect_results_identical(const BagOfTasksResult& a,
                              const BagOfTasksResult& b) {
  EXPECT_EQ(a.makespan_days, b.makespan_days);
  EXPECT_EQ(a.total_cpu_days, b.total_cpu_days);
  EXPECT_EQ(a.mean_host_busy_days, b.mean_host_busy_days);
  EXPECT_EQ(a.max_host_busy_days, b.max_host_busy_days);
  EXPECT_EQ(a.hosts_used, b.hosts_used);
  EXPECT_EQ(a.wasted_cpu_days, b.wasted_cpu_days);
  EXPECT_EQ(a.interruptions, b.interruptions);
}

TEST(BagOfTasks, FastPathBitIdenticalToReference) {
  // The blocked-MCT, 4-ary-heap and interval-walking kernels promise
  // results bit-identical to the retained scalar / priority_queue /
  // full-walk reference kernels — for every policy, with and without the
  // availability overlay, on both entry points.
  const std::vector<HostResources> hosts = model_hosts(300, 13);
  const HostResourcesSoA soa = HostResourcesSoA::from_hosts(hosts);
  BagOfTasksConfig config;
  config.task_count = 1500;
  const SchedulingPolicy policies[] = {
      SchedulingPolicy::kStaticRoundRobin,
      SchedulingPolicy::kStaticSpeedWeighted,
      SchedulingPolicy::kDynamicPull,
      SchedulingPolicy::kDynamicEct,
      SchedulingPolicy::kChurnEctCheckpoint,
      SchedulingPolicy::kChurnEctRestart,
      SchedulingPolicy::kChurnEctAbandon,
  };
  for (const bool availability : {false, true}) {
    config.model_availability = availability;
    for (const SchedulingPolicy policy : policies) {
      util::Rng r1(41), r2(41), r3(41);
      const BagOfTasksResult fast = run_bag_of_tasks(soa, config, policy, r1);
      const BagOfTasksResult ref =
          run_bag_of_tasks_reference(soa, config, policy, r2);
      const BagOfTasksResult ref_aos =
          run_bag_of_tasks_reference(hosts, config, policy, r3);
      expect_results_identical(fast, ref);
      expect_results_identical(fast, ref_aos);
    }
  }
}

TEST(BagOfTasks, ChurnPoliciesModelRealInterruptions) {
  const auto hosts = model_hosts(150, 14);
  BagOfTasksConfig config;
  config.task_count = 1200;
  util::Rng r1(51), r2(51), r3(51), r4(51);
  const auto derate = run_bag_of_tasks(
      hosts, [] {
        BagOfTasksConfig c;
        c.task_count = 1200;
        c.model_availability = true;
        return c;
      }(), SchedulingPolicy::kDynamicEct, r1);
  const auto ckpt = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kChurnEctCheckpoint, r2);
  const auto restart = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kChurnEctRestart, r3);
  const auto abandon = run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kChurnEctAbandon, r4);

  // Checkpointing never wastes work; restart and abandon burn real ON
  // time on the heavy-tailed session mix.
  EXPECT_DOUBLE_EQ(ckpt.wasted_cpu_days, 0.0);
  EXPECT_EQ(ckpt.interruptions, 0u);
  EXPECT_GT(restart.interruptions, 0u);
  EXPECT_GT(restart.wasted_cpu_days, 0.0);
  EXPECT_GT(abandon.interruptions, 0u);
  // All four are sane, positive schedules.
  EXPECT_GT(derate.makespan_days, 0.0);
  EXPECT_GT(ckpt.makespan_days, 0.0);
  EXPECT_GE(restart.makespan_days, ckpt.makespan_days * 0.999);
  EXPECT_GT(abandon.makespan_days, 0.0);
}

TEST(BagOfTasks, CoupledAvailabilityMakespanIsMonotoneInRho) {
  // Fast-but-flaky (rho < 0) must hurt interval-aware ECT more than
  // uncorrelated coupling, which must hurt more than fast-and-steady
  // (rho > 0) — the coupling's end-to-end signature.
  const auto hosts = model_hosts(400, 15);
  BagOfTasksConfig config;
  config.task_count = 4000;
  config.availability_coupled = true;
  double last = -1.0;
  for (const double rho : {-0.5, 0.0, 0.5}) {
    config.availability_coupling.speed_rho = rho;
    util::Rng rng(61);
    const auto result = run_bag_of_tasks(
        hosts, config, SchedulingPolicy::kChurnEctCheckpoint, rng);
    if (last >= 0.0) {
      EXPECT_LT(result.makespan_days, last) << "rho " << rho;
    }
    last = result.makespan_days;
  }
}

TEST(BagOfTasks, ComputeHostRatesSoAMatchesAoSStream) {
  // The batched SoA derating path must consume the rng identically to the
  // AoS loop: one fork per host, in host order. Identical rate columns
  // AND identical generator state afterwards.
  const std::vector<HostResources> hosts = model_hosts(150, 17);
  const HostResourcesSoA soa = HostResourcesSoA::from_hosts(hosts);
  BagOfTasksConfig config;
  config.model_availability = true;
  util::Rng rng_aos(55), rng_soa(55);
  const std::vector<double> aos = compute_host_rates(hosts, config, rng_aos);
  const std::vector<double> via_soa =
      compute_host_rates(soa, config, rng_soa);
  ASSERT_EQ(aos.size(), via_soa.size());
  for (std::size_t h = 0; h < aos.size(); ++h) {
    EXPECT_EQ(aos[h], via_soa[h]) << "host " << h;
  }
  EXPECT_EQ(rng_aos.next(), rng_soa.next());
}

TEST(BagOfTasks, StaticMakespanIsMaxBusyWithoutExtraPass) {
  const auto hosts = model_hosts(100, 19);
  BagOfTasksConfig config;
  config.task_count = 700;
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kStaticRoundRobin,
        SchedulingPolicy::kStaticSpeedWeighted}) {
    util::Rng rng(23);
    const BagOfTasksResult result =
        run_bag_of_tasks(hosts, config, policy, rng);
    EXPECT_EQ(result.makespan_days, result.max_host_busy_days);
  }
}

TEST(PolicySweep, CellsMatchDirectRunsAndThreadCountIsIrrelevant) {
  std::vector<SweepPopulation> populations;
  populations.push_back(
      {"small", HostResourcesSoA::from_hosts(model_hosts(80, 25))});
  populations.push_back(
      {"large", HostResourcesSoA::from_hosts(model_hosts(130, 26))});

  PolicySweepConfig sweep;
  sweep.policies = {
      SchedulingPolicy::kStaticRoundRobin,
      SchedulingPolicy::kStaticSpeedWeighted,
      SchedulingPolicy::kDynamicPull,
      SchedulingPolicy::kDynamicEct,
      SchedulingPolicy::kChurnEctCheckpoint,
      SchedulingPolicy::kChurnEctRestart,
      SchedulingPolicy::kChurnEctAbandon,
  };
  sweep.task_counts = {150, 400};
  sweep.base.model_availability = true;
  // Coupling on, so the copula draws are part of the shared stream too.
  sweep.base.availability_coupled = true;
  sweep.base.availability_coupling.speed_rho = -0.3;
  sweep.workload_seed = 777;

  sweep.threads = 1;
  const PolicySweepResult serial = run_policy_sweep(populations, sweep);
  sweep.threads = 4;
  const PolicySweepResult parallel = run_policy_sweep(populations, sweep);
  ASSERT_EQ(serial.cells.size(),
            populations.size() * sweep.policies.size() *
                sweep.task_counts.size());

  for (std::size_t p = 0; p < populations.size(); ++p) {
    for (std::size_t pol = 0; pol < sweep.policies.size(); ++pol) {
      for (std::size_t t = 0; t < sweep.task_counts.size(); ++t) {
        const PolicySweepCell& cell = serial.at(p, pol, t);
        EXPECT_EQ(cell.population, p);
        EXPECT_EQ(cell.policy, pol);
        EXPECT_EQ(cell.task_count, t);
        expect_results_identical(cell.result,
                                 parallel.at(p, pol, t).result);
        // Every cell is exactly one deterministic run_bag_of_tasks call.
        BagOfTasksConfig direct_config = sweep.base;
        direct_config.task_count = sweep.task_counts[t];
        util::Rng direct_rng(sweep.workload_seed);
        const BagOfTasksResult direct = run_bag_of_tasks(
            populations[p].hosts, direct_config, sweep.policies[pol],
            direct_rng);
        expect_results_identical(cell.result, direct);
      }
    }
  }
}

TEST(PolicySweep, ChurnCellsMatchStandaloneWithoutDerateFlag) {
  // model_availability = false with churn policies present: churn cells
  // resume the rng from the post-realization state, derate-free cells
  // from the untouched seed state — both must equal their standalone
  // runs.
  std::vector<SweepPopulation> populations;
  populations.push_back(
      {"pop", HostResourcesSoA::from_hosts(model_hosts(90, 28))});
  PolicySweepConfig sweep;
  sweep.policies = {SchedulingPolicy::kDynamicEct,
                    SchedulingPolicy::kChurnEctCheckpoint,
                    SchedulingPolicy::kChurnEctAbandon};
  sweep.task_counts = {200};
  sweep.workload_seed = 555;
  const PolicySweepResult grid = run_policy_sweep(populations, sweep);
  for (std::size_t pol = 0; pol < sweep.policies.size(); ++pol) {
    BagOfTasksConfig direct = sweep.base;
    direct.task_count = 200;
    util::Rng rng(555);
    const auto standalone = run_bag_of_tasks(populations[0].hosts, direct,
                                             sweep.policies[pol], rng);
    expect_results_identical(grid.at(0, pol, 0).result, standalone);
  }
}

TEST(PolicySweep, ChurnLevelsKnobCellsMatchStandaloneRuns) {
  // The lookahead-depth knob rides through the sweep's warm-state path
  // (shared ScheduleState caches + churn cursor seed); cells at a
  // non-default depth must still equal their standalone runs bit for
  // bit, at any thread count.
  std::vector<SweepPopulation> populations;
  populations.push_back(
      {"pop", HostResourcesSoA::from_hosts(model_hosts(80, 29))});
  PolicySweepConfig sweep;
  sweep.policies = {SchedulingPolicy::kChurnEctCheckpoint,
                    SchedulingPolicy::kChurnEctRestart};
  sweep.task_counts = {150};
  sweep.workload_seed = 606;
  sweep.base.churn_lookahead_levels = 2;
  sweep.threads = 1;
  const PolicySweepResult serial = run_policy_sweep(populations, sweep);
  sweep.threads = 4;
  const PolicySweepResult parallel = run_policy_sweep(populations, sweep);
  for (std::size_t pol = 0; pol < sweep.policies.size(); ++pol) {
    expect_results_identical(serial.at(0, pol, 0).result,
                             parallel.at(0, pol, 0).result);
    BagOfTasksConfig direct = sweep.base;
    direct.task_count = 150;
    util::Rng rng(606);
    const auto standalone = run_bag_of_tasks(populations[0].hosts, direct,
                                             sweep.policies[pol], rng);
    expect_results_identical(serial.at(0, pol, 0).result, standalone);
  }
}

TEST(BagOfTasks, RejectsOutOfRangeChurnLookaheadLevels) {
  const auto hosts = model_hosts(20, 30);
  util::Rng rng(9);
  BagOfTasksConfig config;
  config.task_count = 10;
  config.churn_lookahead_levels = 0;
  EXPECT_THROW(run_bag_of_tasks(hosts, config,
                                SchedulingPolicy::kChurnEctCheckpoint, rng),
               std::invalid_argument);
  config.churn_lookahead_levels = churn::kMaxLookaheadLevels + 1;
  EXPECT_THROW(run_bag_of_tasks(hosts, config,
                                SchedulingPolicy::kChurnEctCheckpoint, rng),
               std::invalid_argument);
  config.churn_lookahead_levels = churn::kMaxLookaheadLevels;
  EXPECT_NO_THROW(run_bag_of_tasks(
      hosts, config, SchedulingPolicy::kChurnEctCheckpoint, rng));
}

TEST(BagOfTasks, SharedRealizationOverloadMatchesStandalone) {
  // Drawing the realization once and passing it in must reproduce the
  // draw-inside path exactly: same availability stream, same task
  // stream, for churn and derate policies alike. This is the contract
  // that keeps knob sweeps (e.g. churn-levels variants) draw-comparable.
  const HostResourcesSoA hosts =
      HostResourcesSoA::from_hosts(model_hosts(70, 31));
  BagOfTasksConfig config;
  config.task_count = 120;
  config.model_availability = true;
  for (const SchedulingPolicy policy :
       {SchedulingPolicy::kDynamicEct, SchedulingPolicy::kChurnEctCheckpoint,
        SchedulingPolicy::kChurnEctRestart}) {
    util::Rng inside_rng(4242);
    const auto inside = run_bag_of_tasks(hosts, config, policy, inside_rng);

    util::Rng outside_rng(4242);
    const std::vector<double> speed = base_host_rates(hosts);
    const AvailabilityRealization real =
        realize_availability(speed, config, outside_rng);
    const auto outside =
        run_bag_of_tasks(hosts, real, config, policy, outside_rng);
    expect_results_identical(inside, outside);
  }
}

TEST(BagOfTasks, SharedRealizationOverloadValidatesCoverage) {
  const HostResourcesSoA hosts =
      HostResourcesSoA::from_hosts(model_hosts(30, 32));
  BagOfTasksConfig config;
  config.task_count = 10;
  config.model_availability = true;
  AvailabilityRealization empty;  // no timeline, no fractions
  util::Rng rng(5);
  EXPECT_THROW(run_bag_of_tasks(hosts, empty, config,
                                SchedulingPolicy::kChurnEctCheckpoint, rng),
               std::invalid_argument);
  EXPECT_THROW(run_bag_of_tasks(hosts, empty, config,
                                SchedulingPolicy::kDynamicEct, rng),
               std::invalid_argument);
}

TEST(PolicySweep, RejectsEmptyAxesAndPopulations) {
  std::vector<SweepPopulation> populations;
  populations.push_back(
      {"ok", HostResourcesSoA::from_hosts(model_hosts(10, 27))});
  PolicySweepConfig sweep;
  sweep.policies = {SchedulingPolicy::kDynamicEct};
  sweep.task_counts = {10};
  EXPECT_THROW(run_policy_sweep({}, sweep), std::invalid_argument);
  PolicySweepConfig no_policies = sweep;
  no_policies.policies.clear();
  EXPECT_THROW(run_policy_sweep(populations, no_policies),
               std::invalid_argument);
  PolicySweepConfig no_tasks = sweep;
  no_tasks.task_counts.clear();
  EXPECT_THROW(run_policy_sweep(populations, no_tasks), std::invalid_argument);
  // A degenerate count anywhere in the list must throw up front on the
  // calling thread, never from inside a spawned worker.
  PolicySweepConfig bad_later_cell = sweep;
  bad_later_cell.task_counts = {10, 0};
  bad_later_cell.threads = 4;
  EXPECT_THROW(run_policy_sweep(populations, bad_later_cell),
               std::invalid_argument);
  // An out-of-range policy value must also throw on the calling thread.
  PolicySweepConfig bad_policy = sweep;
  bad_policy.policies = {SchedulingPolicy::kDynamicEct,
                         static_cast<SchedulingPolicy>(99)};
  bad_policy.threads = 4;
  EXPECT_THROW(run_policy_sweep(populations, bad_policy),
               std::invalid_argument);
  populations.push_back({"empty", HostResourcesSoA{}});
  EXPECT_THROW(run_policy_sweep(populations, sweep), std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::sim

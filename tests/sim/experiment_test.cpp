#include "sim/experiment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "synth/population.h"

namespace resmodel::sim {
namespace {

const trace::TraceStore& shared_trace() {
  static const trace::TraceStore kTrace = [] {
    synth::PopulationConfig config;
    config.seed = 31337;
    config.target_active_hosts = 1500;
    return synth::generate_population(config);
  }();
  return kTrace;
}

TEST(ExperimentDates, NineMonthsOf2010) {
  const auto dates = default_experiment_dates();
  ASSERT_EQ(dates.size(), 9u);
  EXPECT_EQ(dates.front(), util::ModelDate::from_ymd(2010, 1, 1));
  EXPECT_EQ(dates.back(), util::ModelDate::from_ymd(2010, 9, 1));
}

TEST(Experiment, ShapesAndBasicInvariants) {
  const CorrelatedModel correlated(core::paper_params());
  const GridResourceModel grid(core::paper_params(), 0.5);
  const std::vector<const HostSynthesisModel*> models = {&correlated, &grid};
  const auto apps = paper_applications();
  const std::vector<util::ModelDate> dates = {
      util::ModelDate::from_ymd(2010, 1, 1),
      util::ModelDate::from_ymd(2010, 5, 1)};
  util::Rng rng(1);
  const UtilityExperimentResult result =
      run_utility_experiment(shared_trace(), models, apps, dates, rng);

  ASSERT_EQ(result.model_names.size(), 2u);
  ASSERT_EQ(result.app_names.size(), apps.size());
  ASSERT_EQ(result.diff_percent.size(), 2u);
  ASSERT_EQ(result.diff_percent[0].size(), apps.size());
  ASSERT_EQ(result.diff_percent[0][0].size(), dates.size());
  for (std::size_t d = 0; d < dates.size(); ++d) {
    EXPECT_GT(result.host_counts[d], 0u);
    for (std::size_t a = 0; a < apps.size(); ++a) {
      EXPECT_GT(result.actual_utility[a][d], 0.0);
      for (std::size_t m = 0; m < models.size(); ++m) {
        EXPECT_GE(result.diff_percent[m][a][d], 0.0);
        EXPECT_TRUE(std::isfinite(result.diff_percent[m][a][d]));
      }
    }
  }
}

TEST(Experiment, CorrelatedModelBeatsGridOnP2p) {
  // The paper's strongest claim (Figure 15): for the disk-dominated P2P
  // application the Grid model misses by 46-57% while the correlated
  // model stays within ~5%.
  const CorrelatedModel correlated(core::paper_params());
  const GridResourceModel grid(core::paper_params(), 0.5);
  const std::vector<const HostSynthesisModel*> models = {&correlated, &grid};
  const auto apps = paper_applications();
  const std::vector<util::ModelDate> dates = {
      util::ModelDate::from_ymd(2010, 3, 1),
      util::ModelDate::from_ymd(2010, 7, 1)};
  util::Rng rng(2);
  const UtilityExperimentResult result =
      run_utility_experiment(shared_trace(), models, apps, dates, rng);
  const std::size_t p2p = 3;
  for (std::size_t d = 0; d < dates.size(); ++d) {
    EXPECT_LT(result.diff_percent[0][p2p][d],
              result.diff_percent[1][p2p][d]);
    EXPECT_GT(result.diff_percent[1][p2p][d], 20.0);  // grid way off
  }
}

TEST(Experiment, ThrowsOnEmptySnapshot) {
  const CorrelatedModel correlated(core::paper_params());
  const std::vector<const HostSynthesisModel*> models = {&correlated};
  util::Rng rng(3);
  const std::vector<util::ModelDate> bad_dates = {
      util::ModelDate::from_ymd(2020, 1, 1)};
  EXPECT_THROW(run_utility_experiment(shared_trace(), models,
                                      paper_applications(), bad_dates, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::sim

#include "sim/allocator.h"

#include <gtest/gtest.h>

namespace resmodel::sim {
namespace {

HostResources host(double cores, double mem, double dhry, double whet,
                   double disk) {
  return {cores, mem, dhry, whet, disk};
}

TEST(Allocator, ThrowsWithoutApplications) {
  const std::vector<HostResources> hosts = {host(1, 1024, 2000, 1000, 10)};
  EXPECT_THROW(allocate_round_robin({}, hosts), std::invalid_argument);
}

TEST(Allocator, EmptyHostsGiveZeroUtility) {
  const auto apps = paper_applications();
  const AllocationResult r =
      allocate_round_robin(apps, std::vector<HostResources>{});
  ASSERT_EQ(r.total_utility.size(), apps.size());
  for (double u : r.total_utility) EXPECT_DOUBLE_EQ(u, 0.0);
}

TEST(Allocator, EveryHostAssignedExactlyOnce) {
  const auto apps = paper_applications();
  std::vector<HostResources> hosts;
  for (int i = 0; i < 103; ++i) {
    hosts.push_back(host(1 + i % 4, 512 * (1 + i % 8), 2000 + i, 1000 + i,
                         5 + i));
  }
  const AllocationResult r = allocate_round_robin(apps, hosts);
  std::size_t assigned_total = 0;
  for (std::size_t n : r.hosts_assigned) assigned_total += n;
  EXPECT_EQ(assigned_total, hosts.size());
  for (std::size_t owner : r.assignment) {
    ASSERT_LT(owner, apps.size());
  }
}

TEST(Allocator, RoundRobinSharesEvenly) {
  const auto apps = paper_applications();
  std::vector<HostResources> hosts(40, host(2, 2048, 4000, 1800, 50));
  const AllocationResult r = allocate_round_robin(apps, hosts);
  for (std::size_t n : r.hosts_assigned) {
    EXPECT_EQ(n, 10u);
  }
}

TEST(Allocator, FirstPickGoesToHighestUtility) {
  const ApplicationSpec cpu_app{"cpu", 0.0, 0.0, 1.0, 0.0, 0.0};
  std::vector<HostResources> hosts = {
      host(1, 1024, 1000, 1000, 10),
      host(1, 1024, 9000, 1000, 10),  // fastest integer host
      host(1, 1024, 3000, 1000, 10),
  };
  const AllocationResult r =
      allocate_round_robin(std::vector<ApplicationSpec>{cpu_app}, hosts);
  EXPECT_EQ(r.assignment[1], 0u);
  EXPECT_DOUBLE_EQ(r.total_utility[0], 1000.0 + 9000.0 + 3000.0);
}

TEST(Allocator, SpecializedAppsGetTheirPreferredHosts) {
  // One disk monster and one CPU monster; P2P should take the disk host
  // and a CPU-bound app the fast host, regardless of turn order.
  const ApplicationSpec cpu_app{"cpu", 0.0, 0.0, 0.5, 0.5, 0.0};
  const ApplicationSpec disk_app{"disk", 0.0, 0.0, 0.0, 0.0, 1.0};
  std::vector<HostResources> hosts = {
      host(1, 1024, 9000, 4000, 1),    // CPU monster
      host(1, 1024, 1000, 500, 2000),  // disk monster
  };
  const AllocationResult r = allocate_round_robin(
      std::vector<ApplicationSpec>{cpu_app, disk_app}, hosts);
  EXPECT_EQ(r.assignment[0], 0u);
  EXPECT_EQ(r.assignment[1], 1u);
}

TEST(Allocator, MoreAppsThanHosts) {
  const auto apps = paper_applications();
  std::vector<HostResources> hosts = {host(2, 2048, 4000, 1800, 50)};
  const AllocationResult r = allocate_round_robin(apps, hosts);
  std::size_t assigned = 0;
  for (std::size_t n : r.hosts_assigned) assigned += n;
  EXPECT_EQ(assigned, 1u);
  EXPECT_EQ(r.hosts_assigned[0], 1u);  // first app in turn order wins
}

TEST(Allocator, UtilitySumsMatchAssignments) {
  const auto apps = paper_applications();
  std::vector<HostResources> hosts;
  for (int i = 0; i < 37; ++i) {
    hosts.push_back(host(1 + i % 8, 256 * (1 + i % 16), 1500 + 100 * i,
                         900 + 50 * i, 1 + i * 3));
  }
  const AllocationResult r = allocate_round_robin(apps, hosts);
  std::vector<double> recomputed(apps.size(), 0.0);
  for (std::size_t h = 0; h < hosts.size(); ++h) {
    recomputed[r.assignment[h]] +=
        cobb_douglas_utility(apps[r.assignment[h]], hosts[h]);
  }
  for (std::size_t a = 0; a < apps.size(); ++a) {
    EXPECT_NEAR(r.total_utility[a], recomputed[a], 1e-9);
  }
}

}  // namespace
}  // namespace resmodel::sim

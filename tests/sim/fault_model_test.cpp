#include "sim/fault_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <stdexcept>

namespace resmodel::sim {
namespace {

TEST(FaultMixConfig, ValidatesFractionsAndSlowdownRange) {
  FaultMixConfig ok;
  ok.crash_fraction = 0.3;
  ok.straggler_fraction = 0.3;
  ok.corrupter_fraction = 0.4;  // sum exactly 1 is legal
  EXPECT_NO_THROW(ok.validate());

  FaultMixConfig negative;
  negative.crash_fraction = -0.1;
  EXPECT_THROW(negative.validate(), std::invalid_argument);

  FaultMixConfig oversum;
  oversum.crash_fraction = 0.6;
  oversum.straggler_fraction = 0.6;
  EXPECT_THROW(oversum.validate(), std::invalid_argument);

  FaultMixConfig nan_fraction;
  nan_fraction.corrupter_fraction = std::nan("");
  EXPECT_THROW(nan_fraction.validate(), std::invalid_argument);

  FaultMixConfig bad_slowdown;
  bad_slowdown.straggler_fraction = 0.1;
  bad_slowdown.straggler_slowdown_min = 0.5;  // below 1
  EXPECT_THROW(bad_slowdown.validate(), std::invalid_argument);

  FaultMixConfig inverted_range;
  inverted_range.straggler_fraction = 0.1;
  inverted_range.straggler_slowdown_min = 8.0;
  inverted_range.straggler_slowdown_max = 4.0;
  EXPECT_THROW(inverted_range.validate(), std::invalid_argument);
}

TEST(FaultMixConfig, AnyAndFaultyFraction) {
  FaultMixConfig mix;
  EXPECT_FALSE(mix.any());
  mix.straggler_fraction = 0.25;
  EXPECT_TRUE(mix.any());
  EXPECT_DOUBLE_EQ(mix.faulty_fraction(), 0.25);
}

TEST(SampleFaultProfiles, FrequenciesMatchTheMix) {
  FaultMixConfig mix;
  mix.crash_fraction = 0.10;
  mix.straggler_fraction = 0.20;
  mix.corrupter_fraction = 0.05;
  util::Rng rng(42);
  const FaultProfiles profiles = sample_fault_profiles(20000, mix, rng);
  ASSERT_EQ(profiles.size(), 20000u);
  ASSERT_EQ(profiles.slowdown.size(), 20000u);
  std::size_t crash = 0, straggler = 0, corrupter = 0;
  for (std::size_t h = 0; h < profiles.size(); ++h) {
    switch (profiles.type[h]) {
      case FaultType::kCrash: ++crash; break;
      case FaultType::kStraggler: ++straggler; break;
      case FaultType::kCorrupter: ++corrupter; break;
      case FaultType::kHonest: break;
    }
    if (profiles.type[h] == FaultType::kStraggler) {
      EXPECT_GE(profiles.slowdown[h], mix.straggler_slowdown_min);
      EXPECT_LE(profiles.slowdown[h], mix.straggler_slowdown_max);
    } else {
      EXPECT_DOUBLE_EQ(profiles.slowdown[h], 1.0);
    }
  }
  EXPECT_NEAR(crash / 20000.0, 0.10, 0.01);
  EXPECT_NEAR(straggler / 20000.0, 0.20, 0.015);
  EXPECT_NEAR(corrupter / 20000.0, 0.05, 0.01);
}

TEST(SampleFaultProfiles, DeterministicAndForkIsolated) {
  FaultMixConfig mix;
  mix.crash_fraction = 0.2;
  mix.straggler_fraction = 0.2;
  util::Rng a(7), b(7);
  const FaultProfiles pa = sample_fault_profiles(500, mix, a);
  const FaultProfiles pb = sample_fault_profiles(500, mix, b);
  EXPECT_EQ(pa.type, pb.type);
  EXPECT_EQ(pa.slowdown, pb.slowdown);
  // Fork isolation: the parent streams must agree afterwards too.
  EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Digests, CanonicalIsInjectiveOnSmallPayloads) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t p = 0; p < 1000; ++p) {
    EXPECT_TRUE(seen.insert(canonical_digest(p)).second);
  }
}

TEST(Digests, CorruptedAlwaysDiffersFromCanonical) {
  for (std::uint64_t payload : {0ull, 1ull, 42ull, 0xffffffffffffffffull}) {
    for (std::uint64_t salt = 0; salt < 64; ++salt) {
      EXPECT_NE(corrupted_digest(payload, salt), canonical_digest(payload));
    }
  }
}

TEST(Digests, DistinctCorruptersDisagree) {
  // Two corrupters of the same payload must not accidentally form a
  // quorum with each other.
  const std::uint64_t payload = 1234567;
  std::set<std::uint64_t> seen;
  for (std::uint64_t salt = 1; salt <= 200; ++salt) {
    EXPECT_TRUE(seen.insert(corrupted_digest(payload, salt)).second);
  }
}

TEST(ReplicationConfig, ValidatesQuorumAndDeadline) {
  ReplicationConfig ok;
  ok.replicas = 3;
  ok.quorum = 2;
  EXPECT_NO_THROW(ok.validate());

  ReplicationConfig quorum_over_replicas;
  quorum_over_replicas.replicas = 2;
  quorum_over_replicas.quorum = 3;
  EXPECT_THROW(quorum_over_replicas.validate(), std::invalid_argument);

  ReplicationConfig zero_quorum;
  zero_quorum.quorum = 0;
  EXPECT_THROW(zero_quorum.validate(), std::invalid_argument);

  ReplicationConfig too_many;
  too_many.replicas = 33;
  too_many.quorum = 1;
  EXPECT_THROW(too_many.validate(), std::invalid_argument);

  ReplicationConfig bad_deadline;
  bad_deadline.deadline_days = 0.0;
  EXPECT_THROW(bad_deadline.validate(), std::invalid_argument);

  ReplicationConfig bad_backoff;
  bad_backoff.backoff = 0.5;
  EXPECT_THROW(bad_backoff.validate(), std::invalid_argument);
}

TEST(ReplicationOutcome, ConservationPredicate) {
  ReplicationOutcome o;
  o.tasks_issued = 10;
  o.tasks_validated = 7;
  o.tasks_invalid = 2;
  o.tasks_missed_deadline = 1;
  EXPECT_TRUE(o.conserves_tasks());
  o.tasks_missed_deadline = 0;  // one task silently vanished
  EXPECT_FALSE(o.conserves_tasks());
}

}  // namespace
}  // namespace resmodel::sim

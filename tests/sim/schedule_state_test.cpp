#include "sim/schedule_state.h"

#include <gtest/gtest.h>

#include <queue>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace resmodel::sim {
namespace {

// Rates with deliberate exact duplicates (duplicated hardware is the
// common case in the trace) so equal completion times actually occur.
std::vector<double> random_rates(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> rates(n);
  for (double& r : rates) r = 100.0 + rng.uniform() * 10000.0;
  for (std::size_t i = 0; i + 1 < n; i += 3) rates[i + 1] = rates[i];
  return rates;
}

std::vector<double> random_tasks(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> tasks(n);
  for (double& t : tasks) t = 500.0 + rng.uniform() * 8000.0;
  return tasks;
}

void expect_states_identical(const ScheduleState& a, const ScheduleState& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t h = 0; h < a.size(); ++h) {
    EXPECT_EQ(a.free_at[h], b.free_at[h]) << "free_at host " << h;
    EXPECT_EQ(a.busy_days[h], b.busy_days[h]) << "busy_days host " << h;
  }
}

TEST(ScheduleState, FromRatesBuildsColumnsAndSortedCaches) {
  const std::size_t n = 2 * ScheduleState::kBlockSize + 2;  // partial tail
  ScheduleState state = ScheduleState::from_rates(random_rates(n, 1));
  ASSERT_EQ(state.size(), n);
  // The ECT caches are lazy: absent after construction, built on demand,
  // and only then do the sorted invariants hold.
  EXPECT_EQ(state.block_count(), 0u);
  EXPECT_TRUE(state.ect_order.empty());
  state.ensure_ect_caches();
  ASSERT_EQ(state.block_count(), 3u);
  for (std::size_t h = 0; h < n; ++h) {
    EXPECT_EQ(state.inv_rates[h], 1.0 / state.rates[h]);
    EXPECT_EQ(state.free_at[h], 0.0);
    EXPECT_EQ(state.busy_days[h], 0.0);
    EXPECT_EQ(state.ect_order[state.ect_pos[h]], h);  // inverse permutation
  }
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(state.ect_sorted_inv[j], state.inv_rates[state.ect_order[j]]);
    if (j > 0) {
      // Ascending inv_rates, exact ties in ascending host index.
      EXPECT_LE(state.ect_sorted_inv[j - 1], state.ect_sorted_inv[j]);
      if (state.ect_sorted_inv[j - 1] == state.ect_sorted_inv[j]) {
        EXPECT_LT(state.ect_order[j - 1], state.ect_order[j]);
      }
    }
  }
  for (std::size_t b = 0; b < state.block_count(); ++b) {
    EXPECT_EQ(state.ect_block_min_inv[b],
              state.ect_sorted_inv[b * ScheduleState::kBlockSize]);
  }
}

TEST(ScheduleState, RejectsNonPositiveRates) {
  EXPECT_THROW(ScheduleState::from_rates({100.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(ScheduleState::from_rates({-1.0}), std::invalid_argument);
}

TEST(EctKernels, BlockedMatchesReferenceBitForBit) {
  // Host counts straddling the block size (sub-block, exact blocks,
  // partial tail, many blocks) and a workload longer than any block.
  for (const std::size_t hosts : {std::size_t{1}, std::size_t{5},
                                  ScheduleState::kBlockSize,
                                  2 * ScheduleState::kBlockSize + 3,
                                  std::size_t{1000}}) {
    const std::vector<double> rates = random_rates(hosts, 7 + hosts);
    const std::vector<double> tasks = random_tasks(600, 11);
    ScheduleState blocked = ScheduleState::from_rates(rates);
    ScheduleState reference = ScheduleState::from_rates(rates);
    const DynamicScheduleTotals tb = ect_schedule_blocked(blocked, tasks);
    const DynamicScheduleTotals tr = ect_schedule_reference(reference, tasks);
    EXPECT_EQ(tb.makespan_days, tr.makespan_days) << hosts << " hosts";
    EXPECT_EQ(tb.total_cpu_days, tr.total_cpu_days) << hosts << " hosts";
    expect_states_identical(blocked, reference);
  }
}

TEST(EctKernels, EqualCompletionTieBreaksToLowestIndex) {
  // 200 identical hosts (3+ blocks): every task sees an exact tie across
  // all idle hosts, and both kernels must pick the lowest index.
  const std::vector<double> rates(200, 1000.0);
  const std::vector<double> tasks(3, 1000.0);
  ScheduleState blocked = ScheduleState::from_rates(rates);
  ScheduleState reference = ScheduleState::from_rates(rates);
  ect_schedule_blocked(blocked, tasks);
  ect_schedule_reference(reference, tasks);
  for (const ScheduleState* s : {&blocked, &reference}) {
    EXPECT_EQ(s->busy_days[0], 1.0);
    EXPECT_EQ(s->busy_days[1], 1.0);
    EXPECT_EQ(s->busy_days[2], 1.0);
    EXPECT_EQ(s->busy_days[3], 0.0);
  }
  expect_states_identical(blocked, reference);

  // A cross-block tie: hosts 0 and 150 equally fast, everyone else slower.
  std::vector<double> two_fast(200, 10.0);
  two_fast[0] = two_fast[150] = 1000.0;
  ScheduleState b2 = ScheduleState::from_rates(two_fast);
  ScheduleState r2 = ScheduleState::from_rates(two_fast);
  const std::vector<double> one_task = {500.0};
  ect_schedule_blocked(b2, one_task);
  ect_schedule_reference(r2, one_task);
  EXPECT_GT(b2.busy_days[0], 0.0);  // lowest index wins the tie
  EXPECT_EQ(b2.busy_days[150], 0.0);
  expect_states_identical(b2, r2);
}

TEST(EctKernels, MoreHostsThanTasks) {
  const std::vector<double> rates = random_rates(500, 3);
  const std::vector<double> tasks = random_tasks(7, 4);
  ScheduleState blocked = ScheduleState::from_rates(rates);
  ScheduleState reference = ScheduleState::from_rates(rates);
  const DynamicScheduleTotals tb = ect_schedule_blocked(blocked, tasks);
  const DynamicScheduleTotals tr = ect_schedule_reference(reference, tasks);
  EXPECT_EQ(tb.makespan_days, tr.makespan_days);
  expect_states_identical(blocked, reference);
  std::size_t used = 0;
  for (double b : blocked.busy_days) used += b > 0.0;
  EXPECT_EQ(used, tasks.size());  // ECT spreads distinct tasks on idle hosts
}

TEST(EctKernels, SingleHostAccumulatesSequentially) {
  ScheduleState state = ScheduleState::from_rates({250.0});
  const std::vector<double> tasks = {500.0, 250.0, 1000.0};
  const DynamicScheduleTotals totals = ect_schedule_blocked(state, tasks);
  EXPECT_EQ(state.free_at[0], totals.makespan_days);
  EXPECT_EQ(totals.total_cpu_days, totals.makespan_days);
  EXPECT_DOUBLE_EQ(totals.makespan_days, 2.0 + 1.0 + 4.0);
}

TEST(PullHeap, InitialSeedPopsHostsInOrder) {
  PullHeap heap(100);
  for (std::size_t h = 0; h < 100; ++h) {
    const PullHeap::Entry e = heap.pop_min();
    EXPECT_EQ(e.key, 0.0);
    EXPECT_EQ(e.host, h);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(PullHeap, MatchesPriorityQueueOracle) {
  // Random interleaved push/pop against the STL oracle, with keys drawn
  // from a tiny set so key ties (broken by host id) are constant.
  using OracleEntry = std::pair<double, std::uint64_t>;
  std::priority_queue<OracleEntry, std::vector<OracleEntry>, std::greater<>>
      oracle;
  PullHeap heap(0);
  util::Rng rng(21);
  std::uint64_t next_host = 0;
  for (int op = 0; op < 4000; ++op) {
    if (heap.empty() || rng.uniform() < 0.55) {
      const double key = static_cast<double>(rng.uniform_index(8));
      heap.push(key, next_host);
      oracle.push({key, next_host});
      ++next_host;
    } else {
      const PullHeap::Entry got = heap.pop_min();
      const OracleEntry want = oracle.top();
      oracle.pop();
      EXPECT_EQ(got.key, want.first);
      EXPECT_EQ(got.host, want.second);
    }
  }
  while (!heap.empty()) {
    const PullHeap::Entry got = heap.pop_min();
    const OracleEntry want = oracle.top();
    oracle.pop();
    EXPECT_EQ(got.key, want.first);
    EXPECT_EQ(got.host, want.second);
  }
  EXPECT_TRUE(oracle.empty());
}

TEST(PullHeap, ReplaceMinEquivalentToPopPush) {
  PullHeap fused(50);
  PullHeap two_step(50);
  util::Rng rng(22);
  for (int op = 0; op < 500; ++op) {
    const double key = rng.uniform() * 10.0;
    const std::uint64_t host = fused.min().host;
    fused.replace_min(key, host);
    const PullHeap::Entry popped = two_step.pop_min();
    EXPECT_EQ(popped.host, host);
    two_step.push(key, host);
  }
  while (!fused.empty()) {
    const PullHeap::Entry a = fused.pop_min();
    const PullHeap::Entry b = two_step.pop_min();
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.host, b.host);
  }
  EXPECT_TRUE(two_step.empty());
}

TEST(PullHeap, KeySeededConstructorHeapifies) {
  util::Rng rng(23);
  std::vector<double> keys(137);
  for (double& k : keys) k = static_cast<double>(rng.uniform_index(16));
  PullHeap from_keys{std::span<const double>(keys)};
  PullHeap pushed(0);
  for (std::size_t h = 0; h < keys.size(); ++h) {
    pushed.push(keys[h], h);
  }
  while (!from_keys.empty()) {
    const PullHeap::Entry a = from_keys.pop_min();
    const PullHeap::Entry b = pushed.pop_min();
    EXPECT_EQ(a.key, b.key);
    EXPECT_EQ(a.host, b.host);
  }
  EXPECT_TRUE(pushed.empty());
}

TEST(PullKernels, HonorPreAdvancedFreeAt) {
  // A state mid-run (non-zero free_at) continues where it left off: both
  // kernels seed their heaps from the free_at column, so a busy host only
  // pulls again once it goes idle.
  const std::vector<double> rates(10, 100.0);
  const std::vector<double> tasks = {100.0};
  ScheduleState dary = ScheduleState::from_rates(rates);
  ScheduleState reference = ScheduleState::from_rates(rates);
  for (std::size_t h = 0; h < rates.size(); ++h) {
    dary.free_at[h] = reference.free_at[h] = 5.0 + static_cast<double>(h);
  }
  const DynamicScheduleTotals td = pull_schedule_dary(dary, tasks);
  const DynamicScheduleTotals tr = pull_schedule_reference(reference, tasks);
  // Host 0 is the earliest-available (free at day 5) and the task takes
  // one day on it.
  EXPECT_EQ(td.makespan_days, 6.0);
  EXPECT_EQ(tr.makespan_days, 6.0);
  EXPECT_EQ(dary.free_at[0], 6.0);
  EXPECT_EQ(reference.free_at[0], 6.0);
}

TEST(PullKernels, DaryMatchesPriorityQueueBitForBit) {
  for (const std::size_t hosts :
       {std::size_t{1}, std::size_t{64}, std::size_t{300}}) {
    const std::vector<double> rates = random_rates(hosts, 31 + hosts);
    const std::vector<double> tasks = random_tasks(800, 33);
    ScheduleState dary = ScheduleState::from_rates(rates);
    ScheduleState reference = ScheduleState::from_rates(rates);
    const DynamicScheduleTotals td = pull_schedule_dary(dary, tasks);
    const DynamicScheduleTotals tr = pull_schedule_reference(reference, tasks);
    EXPECT_EQ(td.makespan_days, tr.makespan_days) << hosts << " hosts";
    EXPECT_EQ(td.total_cpu_days, tr.total_cpu_days) << hosts << " hosts";
    ASSERT_EQ(dary.size(), reference.size());
    for (std::size_t h = 0; h < hosts; ++h) {
      EXPECT_EQ(dary.free_at[h], reference.free_at[h]);
      EXPECT_EQ(dary.busy_days[h], reference.busy_days[h]);
    }
  }
}

}  // namespace
}  // namespace resmodel::sim

#include "model/correlation_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "model/cholesky_gaussian.h"
#include "model/empirical_rank_copula.h"
#include "model/factory.h"
#include "model/independent.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/matrix.h"
#include "util/rng.h"

namespace resmodel::model {
namespace {

stats::Matrix paper_r() {
  return stats::Matrix::from_rows({
      {1.0, 0.250, 0.306},
      {0.250, 1.0, 0.639},
      {0.306, 0.639, 1.0},
  });
}

/// Columns of `n` triples drawn from `m`.
std::vector<std::vector<double>> sample_columns(const CorrelationModel& m,
                                                std::size_t n,
                                                std::uint64_t seed) {
  std::vector<std::vector<double>> cols(m.dimension());
  for (auto& c : cols) c.reserve(n);
  util::Rng rng(seed);
  std::vector<double> z(m.dimension());
  for (std::size_t i = 0; i < n; ++i) {
    m.sample_normals(0.0, rng, z);
    for (std::size_t d = 0; d < z.size(); ++d) cols[d].push_back(z[d]);
  }
  return cols;
}

/// Spearman correlation of a bivariate Gaussian with Pearson r.
double gaussian_spearman(double r) {
  return 6.0 / std::numbers::pi * std::asin(r / 2.0);
}

TEST(CholeskyGaussian, MatchesLegacyCorrelatedNormals) {
  const CholeskyGaussian m(paper_r());
  const auto lower = stats::cholesky(paper_r());
  ASSERT_TRUE(lower.has_value());
  util::Rng a(123), b(123);
  double z[3];
  for (int i = 0; i < 100; ++i) {
    m.sample_normals(4.0, a, z);
    const std::vector<double> expected = stats::correlated_normals(b, *lower);
    for (std::size_t d = 0; d < 3; ++d) {
      ASSERT_DOUBLE_EQ(z[d], expected[d]) << "draw " << i << " dim " << d;
    }
  }
}

TEST(CholeskyGaussian, ReproducesPearsonMatrix) {
  const CholeskyGaussian m(paper_r());
  const auto cols = sample_columns(m, 50000, 7);
  EXPECT_NEAR(stats::pearson(cols[0], cols[1]), 0.250, 0.02);
  EXPECT_NEAR(stats::pearson(cols[0], cols[2]), 0.306, 0.02);
  EXPECT_NEAR(stats::pearson(cols[1], cols[2]), 0.639, 0.02);
  for (const auto& c : cols) {
    EXPECT_NEAR(stats::mean(c), 0.0, 0.02);
    EXPECT_NEAR(stats::stddev(c), 1.0, 0.02);
  }
}

TEST(CholeskyGaussian, RejectsNonPositiveDefinite) {
  EXPECT_THROW(CholeskyGaussian(stats::Matrix::from_rows({
                   {1.0, 0.99},
                   {0.5, 1.0},  // asymmetric
               })),
               std::invalid_argument);
  EXPECT_THROW(CholeskyGaussian(stats::Matrix::from_rows({
                   {1.0, 1.2},
                   {1.2, 1.0},  // |r| > 1, not PD
               })),
               std::invalid_argument);
  EXPECT_THROW(CholeskyGaussian(stats::Matrix(0, 0)), std::invalid_argument);
}

TEST(Independent, ComponentsUncorrelated) {
  const Independent m;
  EXPECT_EQ(m.dimension(), kTripleDim);
  const auto cols = sample_columns(m, 50000, 11);
  EXPECT_NEAR(stats::pearson(cols[0], cols[1]), 0.0, 0.02);
  EXPECT_NEAR(stats::pearson(cols[0], cols[2]), 0.0, 0.02);
  EXPECT_NEAR(stats::pearson(cols[1], cols[2]), 0.0, 0.02);
  for (const auto& c : cols) {
    EXPECT_NEAR(stats::mean(c), 0.0, 0.02);
    EXPECT_NEAR(stats::stddev(c), 1.0, 0.02);
  }
}

TEST(CorrelationModel, SampleUniformsAreUniform) {
  const CholeskyGaussian m(paper_r());
  util::Rng rng(13);
  std::vector<double> u(3);
  std::vector<double> first;
  for (int i = 0; i < 20000; ++i) {
    m.sample_uniforms(0.0, rng, u);
    for (double v : u) {
      ASSERT_GT(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
    first.push_back(u[0]);
  }
  EXPECT_NEAR(stats::mean(first), 0.5, 0.01);
  EXPECT_NEAR(stats::stddev(first), std::sqrt(1.0 / 12.0), 0.01);
}

// The satellite requirement: a copula fitted on generated data reproduces
// the input Spearman matrix within tolerance. Rank correlation must also
// survive arbitrary monotone marginal transforms.
TEST(EmpiricalRankCopula, RecoversSpearmanOfGeneratingProcess) {
  const stats::Matrix r = paper_r();
  const CholeskyGaussian truth(r);
  auto cols = sample_columns(truth, 40000, 17);
  // Monotone, wildly non-linear marginal transforms: ranks are invariant.
  for (double& v : cols[0]) v = std::exp(v);
  for (double& v : cols[1]) v = v * v * v;
  for (double& v : cols[2]) v = std::atan(v) * 1e6;

  const EmpiricalRankCopula fitted = EmpiricalRankCopula::fit(cols);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(fitted.fitted_spearman()(i, j),
                  gaussian_spearman(r(i, j)), 0.02)
          << i << "," << j;
      // The 2 sin(pi rho / 6) back-map recovers the latent Pearson R.
      EXPECT_NEAR(fitted.gaussian_correlation()(i, j), r(i, j), 0.02)
          << i << "," << j;
    }
  }
}

TEST(EmpiricalRankCopula, RefitOnOwnSamplesRoundTrips) {
  const CholeskyGaussian truth(paper_r());
  const EmpiricalRankCopula first =
      EmpiricalRankCopula::fit(sample_columns(truth, 30000, 19));
  const EmpiricalRankCopula second =
      EmpiricalRankCopula::fit(sample_columns(first, 30000, 23));
  EXPECT_LT(
      second.fitted_spearman().max_abs_diff(first.fitted_spearman()), 0.03);
}

TEST(EmpiricalRankCopula, FitRejectsBadInput) {
  const std::vector<std::vector<double>> ragged = {{1, 2, 3}, {1, 2}};
  EXPECT_THROW(EmpiricalRankCopula::fit(ragged), std::invalid_argument);
  const std::vector<std::vector<double>> tiny = {{1, 2}, {2, 1}};
  EXPECT_THROW(EmpiricalRankCopula::fit(tiny), std::invalid_argument);
  const std::vector<std::vector<double>> constant = {{1, 1, 1, 1},
                                                     {1, 2, 3, 4}};
  EXPECT_THROW(EmpiricalRankCopula::fit(constant), std::invalid_argument);
  const std::vector<std::vector<double>> one = {{1, 2, 3}};
  EXPECT_THROW(EmpiricalRankCopula::fit(one), std::invalid_argument);
}

TEST(EmpiricalRankCopula, PdRepairYieldsUsableMatrix) {
  // A rank matrix whose 2 sin(pi rho/6) image is far outside the PD cone.
  const stats::Matrix s = stats::Matrix::from_rows({
      {1.0, 0.95, -0.95},
      {0.95, 1.0, 0.95},
      {-0.95, 0.95, 1.0},
  });
  const stats::Matrix repaired = gaussian_correlation_from_spearman(s);
  EXPECT_TRUE(stats::cholesky(repaired).has_value());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(repaired(i, i), 1.0);
  }
}

TEST(Factory, ParsesKnownKinds) {
  EXPECT_EQ(parse_correlation_kind("cholesky"), CorrelationKind::kCholesky);
  EXPECT_EQ(parse_correlation_kind("independent"),
            CorrelationKind::kIndependent);
  EXPECT_EQ(parse_correlation_kind("empirical"), CorrelationKind::kEmpirical);
  EXPECT_FALSE(parse_correlation_kind("copula").has_value());
  EXPECT_FALSE(parse_correlation_kind("").has_value());
}

TEST(Factory, BuildsModels) {
  const stats::Matrix r = paper_r();
  EXPECT_EQ(
      make_correlation_model(CorrelationKind::kCholesky, r)->name(),
      "cholesky");
  EXPECT_EQ(
      make_correlation_model(CorrelationKind::kIndependent, r)->name(),
      "independent");
  EXPECT_EQ(
      make_correlation_model(CorrelationKind::kIndependent, r)->dimension(),
      3u);
}

TEST(Factory, EmpiricalWithoutTraceThrows) {
  EXPECT_THROW(
      make_correlation_model(CorrelationKind::kEmpirical, paper_r()),
      std::invalid_argument);
}

TEST(Factory, SpanningFitDatesLieInsideTraceWindow) {
  trace::TraceStore store;
  trace::HostRecord a;
  a.created_day = 100;
  a.last_contact_day = 400;
  trace::HostRecord b;
  b.created_day = 700;
  b.last_contact_day = 1100;
  store.add(a);
  store.add(b);
  const auto dates = spanning_fit_dates(store, 4);
  ASSERT_EQ(dates.size(), 4u);
  for (std::size_t i = 0; i < dates.size(); ++i) {
    EXPECT_GT(dates[i].day_index(), 100);
    EXPECT_LT(dates[i].day_index(), 1100);
    if (i > 0) EXPECT_GT(dates[i].day_index(), dates[i - 1].day_index());
  }
  EXPECT_TRUE(spanning_fit_dates(trace::TraceStore{}, 4).empty());
}

TEST(CorrelationModel, CloneIsIndependentAndEquivalent) {
  const CholeskyGaussian m(paper_r());
  const auto copy = m.clone();
  util::Rng a(31), b(31);
  double za[3], zb[3];
  for (int i = 0; i < 50; ++i) {
    m.sample_normals(1.0, a, za);
    copy->sample_normals(1.0, b, zb);
    for (std::size_t d = 0; d < 3; ++d) ASSERT_DOUBLE_EQ(za[d], zb[d]);
  }
}

}  // namespace
}  // namespace resmodel::model

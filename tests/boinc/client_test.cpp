#include "boinc/client.h"

#include <gtest/gtest.h>

#include <cmath>

namespace resmodel::boinc {
namespace {

trace::HostRecord spec_host() {
  trace::HostRecord h;
  h.id = 5;
  h.created_day = 100;
  h.last_contact_day = 400;  // death day
  h.n_cores = 4;
  h.memory_mb = 4096;
  h.dhrystone_mips = 5000;
  h.whetstone_mips = 2500;
  h.disk_avail_gb = 80;
  h.disk_total_gb = 200;
  h.cpu = trace::CpuFamily::kIntelXeon;
  h.os = trace::OsFamily::kLinux;
  return h;
}

ClientConfig default_config() {
  ClientConfig c;
  c.mean_contact_interval_days = 2.0;
  return c;
}

TEST(VirtualClient, FirstContactAtBirth) {
  VirtualClient client(spec_host(), default_config(), util::Rng(1));
  EXPECT_TRUE(client.alive());
  const SchedulerRequest r = client.make_request();
  EXPECT_EQ(r.host_id, 5u);
  EXPECT_EQ(r.day, 100);
}

TEST(VirtualClient, ContactsAdvanceMonotonically) {
  VirtualClient client(spec_host(), default_config(), util::Rng(2));
  double prev = -1.0;
  for (int i = 0; i < 20 && client.alive(); ++i) {
    const double day = client.next_contact_day();
    EXPECT_GT(day, prev);
    prev = day;
    (void)client.make_request();
  }
}

TEST(VirtualClient, DiesAfterDeathDay) {
  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 103;  // short life
  VirtualClient client(spec, default_config(), util::Rng(3));
  int contacts = 0;
  while (client.alive() && contacts < 1000) {
    (void)client.make_request();
    ++contacts;
  }
  EXPECT_FALSE(client.alive());
  EXPECT_LT(contacts, 50);  // ~3 days at mean interval 2
}

TEST(VirtualClient, MeasurementsJitterAroundSpec) {
  ClientConfig config = default_config();
  config.benchmark_jitter_sigma = 0.05;
  VirtualClient client(spec_host(), config, util::Rng(4));
  double sum = 0.0;
  int n = 0;
  while (client.alive() && n < 100) {
    const SchedulerRequest r = client.make_request();
    EXPECT_GT(r.measurement.dhrystone_mips, 5000.0 * 0.7);
    EXPECT_LT(r.measurement.dhrystone_mips, 5000.0 * 1.4);
    sum += r.measurement.dhrystone_mips;
    ++n;
  }
  ASSERT_GT(n, 30);
  EXPECT_NEAR(sum / n, 5000.0, 200.0);
}

TEST(VirtualClient, StaticHardwareFieldsUnchanged) {
  VirtualClient client(spec_host(), default_config(), util::Rng(5));
  for (int i = 0; i < 10 && client.alive(); ++i) {
    const SchedulerRequest r = client.make_request();
    EXPECT_EQ(r.measurement.n_cores, 4);
    EXPECT_DOUBLE_EQ(r.measurement.memory_mb, 4096.0);
    EXPECT_EQ(r.measurement.cpu, trace::CpuFamily::kIntelXeon);
    EXPECT_EQ(r.measurement.os, trace::OsFamily::kLinux);
  }
}

TEST(VirtualClient, DiskDriftsButStaysBounded) {
  ClientConfig config = default_config();
  config.disk_drift_sigma = 0.2;
  VirtualClient client(spec_host(), config, util::Rng(6));
  while (client.alive()) {
    const SchedulerRequest r = client.make_request();
    ASSERT_GE(r.measurement.disk_avail_gb, 0.01);
    ASSERT_LE(r.measurement.disk_avail_gb, 200.0);  // total disk
  }
}

TEST(VirtualClient, CompletesQueuedWorkOverTime) {
  VirtualClient client(spec_host(), default_config(), util::Rng(7));
  (void)client.make_request();
  SchedulerReply reply;
  reply.granted_work_units = 5;
  client.handle_reply(reply);
  std::uint32_t completed = 0;
  while (client.alive()) {
    completed += client.make_request().completed_work_units;
    if (completed >= 5) break;
  }
  EXPECT_EQ(completed, 5u);
}

TEST(VirtualClient, AvailabilityDefersContactsButKeepsOrder) {
  ClientConfig config = default_config();
  config.model_availability = true;
  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 1000;
  VirtualClient client(spec, config, util::Rng(9));
  double prev = -1.0;
  int contacts = 0;
  while (client.alive() && contacts < 200) {
    const double day = client.next_contact_day();
    ASSERT_GT(day, prev);
    prev = day;
    (void)client.make_request();
    ++contacts;
  }
  EXPECT_GT(contacts, 10);
}

TEST(VirtualClient, AvailabilityStretchesContactIntervals) {
  // With OFF periods interleaved, the realized mean gap between contacts
  // must exceed the configured exponential mean.
  ClientConfig plain = default_config();
  ClientConfig with_avail = default_config();
  with_avail.model_availability = true;
  // Long outages to make the effect unambiguous.
  with_avail.availability.off_lognormal_mu = 0.0;  // median 1 day off

  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 3000;

  const auto mean_gap = [&spec](const ClientConfig& config,
                                std::uint64_t seed) {
    VirtualClient client(spec, config, util::Rng(seed));
    double first = client.next_contact_day(), last = first;
    int contacts = 0;
    while (client.alive() && contacts < 300) {
      last = client.next_contact_day();
      (void)client.make_request();
      ++contacts;
    }
    return (last - first) / contacts;
  };
  EXPECT_GT(mean_gap(with_avail, 11), 1.25 * mean_gap(plain, 11));
}

TEST(VirtualClient, BenchmarksConstantWithinAvailabilitySession) {
  // Under the availability model the client benchmarks once per ON
  // session, not per contact: with sessions much longer than the contact
  // interval, consecutive contacts must repeat the exact benchmark pair,
  // and the value must still change across session boundaries eventually.
  ClientConfig config = default_config();
  config.model_availability = true;
  config.mean_contact_interval_days = 0.5;
  // Near-deterministic ~20-day sessions (Weibull k=5) with ~1-day gaps.
  config.availability.on_weibull_k = 5.0;
  config.availability.on_weibull_lambda = 20.0;
  config.availability.off_lognormal_mu = 0.0;
  config.availability.off_lognormal_sigma = 0.3;
  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 3000;
  VirtualClient client(spec, config, util::Rng(17));
  int repeats = 0, changes = 0;
  double prev_dhry = 0.0, prev_whet = 0.0;
  for (int i = 0; i < 300 && client.alive(); ++i) {
    const SchedulerRequest r = client.make_request();
    if (i > 0) {
      const bool same = r.measurement.dhrystone_mips == prev_dhry &&
                        r.measurement.whetstone_mips == prev_whet;
      // The pair moves together or not at all — never one without the
      // other.
      EXPECT_EQ(r.measurement.dhrystone_mips == prev_dhry,
                r.measurement.whetstone_mips == prev_whet);
      same ? ++repeats : ++changes;
    }
    prev_dhry = r.measurement.dhrystone_mips;
    prev_whet = r.measurement.whetstone_mips;
  }
  // ~40 contacts per session: repeats dominate, but boundaries redraw.
  EXPECT_GT(repeats, 10 * changes);
  EXPECT_GT(changes, 0);
}

TEST(VirtualClient, PerContactJitterWithoutAvailabilityModel) {
  // Without the session structure the jitter stays per-contact: two
  // consecutive measurements are (almost surely) distinct.
  VirtualClient client(spec_host(), default_config(), util::Rng(18));
  const double first = client.make_request().measurement.dhrystone_mips;
  const double second = client.make_request().measurement.dhrystone_mips;
  EXPECT_NE(first, second);
}

TEST(VirtualClient, NoWorkReportedWithoutGrants) {
  VirtualClient client(spec_host(), default_config(), util::Rng(8));
  for (int i = 0; i < 5 && client.alive(); ++i) {
    EXPECT_EQ(client.make_request().completed_work_units, 0u);
  }
}

TEST(VirtualClient, OffIntervalDeferralAcrossDeathDayKillsHost) {
  // A contact that lands in an OFF interval straddling the death day is
  // deferred past last_contact_day: the host must report dead rather
  // than contact from beyond the grave, and the deferred day must still
  // be ordered after every prior contact.
  ClientConfig config = default_config();
  config.model_availability = true;
  // Near-permanent outages: median e^4 ~ 55 days off vs 1-day sessions,
  // so a short-lived host is all but guaranteed to defer past its death.
  config.availability.off_lognormal_mu = 4.0;
  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 110;  // 10-day life
  bool saw_deferred_death = false;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    VirtualClient client(spec, config, util::Rng(seed));
    double prev = -1.0;
    int contacts = 0;
    while (client.alive() && contacts < 500) {
      ASSERT_GT(client.next_contact_day(), prev);
      prev = client.next_contact_day();
      (void)client.make_request();
      ++contacts;
    }
    ASSERT_FALSE(client.alive());
    ASSERT_LT(contacts, 500);
    // The killing deferral: the next (never-made) contact is beyond the
    // death day, strictly later than the last real contact.
    if (client.next_contact_day() > spec.last_contact_day + 1.0) {
      EXPECT_GT(client.next_contact_day(), prev - 1e-12);
      saw_deferred_death = true;
    }
  }
  EXPECT_TRUE(saw_deferred_death);
}

TEST(VirtualClient, ZeroRequestedWorkSecondsIsValidAndRequestsNothing) {
  ClientConfig config = default_config();
  config.work_request_seconds = 0.0;
  VirtualClient client(spec_host(), config, util::Rng(12));
  for (int i = 0; i < 5 && client.alive(); ++i) {
    EXPECT_DOUBLE_EQ(client.make_request().requested_work_seconds, 0.0);
  }
}

TEST(VirtualClient, ConfigValidationRejectsBadSigmasAndIntervals) {
  const auto reject = [](ClientConfig config) {
    EXPECT_THROW(VirtualClient(spec_host(), config, util::Rng(1)),
                 std::invalid_argument);
  };
  ClientConfig negative_jitter = default_config();
  negative_jitter.benchmark_jitter_sigma = -0.01;
  reject(negative_jitter);
  ClientConfig negative_drift = default_config();
  negative_drift.disk_drift_sigma = -1e-9;
  reject(negative_drift);
  ClientConfig zero_interval = default_config();
  zero_interval.mean_contact_interval_days = 0.0;
  reject(zero_interval);
  ClientConfig negative_request = default_config();
  negative_request.work_request_seconds = -1.0;
  reject(negative_request);
  ClientConfig sub_unit_slowdown = default_config();
  sub_unit_slowdown.straggler_slowdown = 0.5;
  reject(sub_unit_slowdown);
  // NaN sigmas must not sneak past the comparisons.
  ClientConfig nan_sigma = default_config();
  nan_sigma.benchmark_jitter_sigma = std::nan("");
  reject(nan_sigma);
}

TEST(VirtualClient, HonestClientShipsCanonicalDigest) {
  VirtualClient client(spec_host(), default_config(), util::Rng(13));
  (void)client.make_request();
  SchedulerReply reply;
  reply.granted_work_units = 8;
  client.handle_reply(reply);
  while (client.alive()) {
    const SchedulerRequest r = client.make_request();
    if (r.completed_work_units == 0) {
      EXPECT_EQ(r.result_digest, 0u);
      continue;
    }
    EXPECT_EQ(r.result_digest,
              sim::canonical_digest(
                  result_payload(r.host_id, r.completed_work_units)));
    break;
  }
}

TEST(VirtualClient, CorrupterClientShipsWrongDigest) {
  ClientConfig config = default_config();
  config.fault = sim::FaultType::kCorrupter;
  VirtualClient client(spec_host(), config, util::Rng(13));
  (void)client.make_request();
  SchedulerReply reply;
  reply.granted_work_units = 8;
  client.handle_reply(reply);
  while (client.alive()) {
    const SchedulerRequest r = client.make_request();
    if (r.completed_work_units == 0) continue;
    EXPECT_NE(r.result_digest,
              sim::canonical_digest(
                  result_payload(r.host_id, r.completed_work_units)));
    break;
  }
}

TEST(VirtualClient, StragglerCompletesSlowerThanHonestTwin) {
  // Same seed, same grants: the straggler's cumulative completions must
  // lag the honest client's at every contact (ties allowed early on).
  const auto total_completed = [](ClientConfig config) {
    VirtualClient client(spec_host(), config, util::Rng(21));
    (void)client.make_request();
    SchedulerReply reply;
    reply.granted_work_units = 16;
    std::uint32_t completed = 0;
    for (int i = 0; i < 40 && client.alive(); ++i) {
      client.handle_reply(reply);  // keep the queue topped up
      completed += client.make_request().completed_work_units;
    }
    return completed;
  };
  ClientConfig honest = default_config();
  ClientConfig slow = default_config();
  slow.fault = sim::FaultType::kStraggler;
  slow.straggler_slowdown = 8.0;
  EXPECT_LT(total_completed(slow), total_completed(honest));
  EXPECT_GT(total_completed(slow), 0u);
}

TEST(VirtualClient, CrashClientLosesQueueAcrossSessionDeath) {
  ClientConfig config = default_config();
  config.model_availability = true;
  config.fault = sim::FaultType::kCrash;
  // Short sessions and long outages force session deaths between
  // contacts.
  config.availability.on_weibull_lambda = 0.5;
  config.availability.off_lognormal_mu = 0.5;
  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 2000;
  VirtualClient client(spec, config, util::Rng(31));
  SchedulerReply reply;
  reply.granted_work_units = 16;
  std::uint64_t lost = 0;
  for (int i = 0; i < 400 && client.alive(); ++i) {
    client.handle_reply(reply);
    const SchedulerRequest r = client.make_request();
    lost += r.lost_work_units;
    // A crash report is all-or-nothing: the batch that died completes 0.
    if (r.lost_work_units > 0) {
      EXPECT_EQ(r.completed_work_units, 0u);
    }
  }
  EXPECT_GT(lost, 0u);
}

}  // namespace
}  // namespace resmodel::boinc

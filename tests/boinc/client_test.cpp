#include "boinc/client.h"

#include <gtest/gtest.h>

#include <cmath>

namespace resmodel::boinc {
namespace {

trace::HostRecord spec_host() {
  trace::HostRecord h;
  h.id = 5;
  h.created_day = 100;
  h.last_contact_day = 400;  // death day
  h.n_cores = 4;
  h.memory_mb = 4096;
  h.dhrystone_mips = 5000;
  h.whetstone_mips = 2500;
  h.disk_avail_gb = 80;
  h.disk_total_gb = 200;
  h.cpu = trace::CpuFamily::kIntelXeon;
  h.os = trace::OsFamily::kLinux;
  return h;
}

ClientConfig default_config() {
  ClientConfig c;
  c.mean_contact_interval_days = 2.0;
  return c;
}

TEST(VirtualClient, FirstContactAtBirth) {
  VirtualClient client(spec_host(), default_config(), util::Rng(1));
  EXPECT_TRUE(client.alive());
  const SchedulerRequest r = client.make_request();
  EXPECT_EQ(r.host_id, 5u);
  EXPECT_EQ(r.day, 100);
}

TEST(VirtualClient, ContactsAdvanceMonotonically) {
  VirtualClient client(spec_host(), default_config(), util::Rng(2));
  double prev = -1.0;
  for (int i = 0; i < 20 && client.alive(); ++i) {
    const double day = client.next_contact_day();
    EXPECT_GT(day, prev);
    prev = day;
    (void)client.make_request();
  }
}

TEST(VirtualClient, DiesAfterDeathDay) {
  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 103;  // short life
  VirtualClient client(spec, default_config(), util::Rng(3));
  int contacts = 0;
  while (client.alive() && contacts < 1000) {
    (void)client.make_request();
    ++contacts;
  }
  EXPECT_FALSE(client.alive());
  EXPECT_LT(contacts, 50);  // ~3 days at mean interval 2
}

TEST(VirtualClient, MeasurementsJitterAroundSpec) {
  ClientConfig config = default_config();
  config.benchmark_jitter_sigma = 0.05;
  VirtualClient client(spec_host(), config, util::Rng(4));
  double sum = 0.0;
  int n = 0;
  while (client.alive() && n < 100) {
    const SchedulerRequest r = client.make_request();
    EXPECT_GT(r.measurement.dhrystone_mips, 5000.0 * 0.7);
    EXPECT_LT(r.measurement.dhrystone_mips, 5000.0 * 1.4);
    sum += r.measurement.dhrystone_mips;
    ++n;
  }
  ASSERT_GT(n, 30);
  EXPECT_NEAR(sum / n, 5000.0, 200.0);
}

TEST(VirtualClient, StaticHardwareFieldsUnchanged) {
  VirtualClient client(spec_host(), default_config(), util::Rng(5));
  for (int i = 0; i < 10 && client.alive(); ++i) {
    const SchedulerRequest r = client.make_request();
    EXPECT_EQ(r.measurement.n_cores, 4);
    EXPECT_DOUBLE_EQ(r.measurement.memory_mb, 4096.0);
    EXPECT_EQ(r.measurement.cpu, trace::CpuFamily::kIntelXeon);
    EXPECT_EQ(r.measurement.os, trace::OsFamily::kLinux);
  }
}

TEST(VirtualClient, DiskDriftsButStaysBounded) {
  ClientConfig config = default_config();
  config.disk_drift_sigma = 0.2;
  VirtualClient client(spec_host(), config, util::Rng(6));
  while (client.alive()) {
    const SchedulerRequest r = client.make_request();
    ASSERT_GE(r.measurement.disk_avail_gb, 0.01);
    ASSERT_LE(r.measurement.disk_avail_gb, 200.0);  // total disk
  }
}

TEST(VirtualClient, CompletesQueuedWorkOverTime) {
  VirtualClient client(spec_host(), default_config(), util::Rng(7));
  (void)client.make_request();
  SchedulerReply reply;
  reply.granted_work_units = 5;
  client.handle_reply(reply);
  std::uint32_t completed = 0;
  while (client.alive()) {
    completed += client.make_request().completed_work_units;
    if (completed >= 5) break;
  }
  EXPECT_EQ(completed, 5u);
}

TEST(VirtualClient, AvailabilityDefersContactsButKeepsOrder) {
  ClientConfig config = default_config();
  config.model_availability = true;
  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 1000;
  VirtualClient client(spec, config, util::Rng(9));
  double prev = -1.0;
  int contacts = 0;
  while (client.alive() && contacts < 200) {
    const double day = client.next_contact_day();
    ASSERT_GT(day, prev);
    prev = day;
    (void)client.make_request();
    ++contacts;
  }
  EXPECT_GT(contacts, 10);
}

TEST(VirtualClient, AvailabilityStretchesContactIntervals) {
  // With OFF periods interleaved, the realized mean gap between contacts
  // must exceed the configured exponential mean.
  ClientConfig plain = default_config();
  ClientConfig with_avail = default_config();
  with_avail.model_availability = true;
  // Long outages to make the effect unambiguous.
  with_avail.availability.off_lognormal_mu = 0.0;  // median 1 day off

  trace::HostRecord spec = spec_host();
  spec.last_contact_day = 3000;

  const auto mean_gap = [&spec](const ClientConfig& config,
                                std::uint64_t seed) {
    VirtualClient client(spec, config, util::Rng(seed));
    double first = client.next_contact_day(), last = first;
    int contacts = 0;
    while (client.alive() && contacts < 300) {
      last = client.next_contact_day();
      (void)client.make_request();
      ++contacts;
    }
    return (last - first) / contacts;
  };
  EXPECT_GT(mean_gap(with_avail, 11), 1.25 * mean_gap(plain, 11));
}

TEST(VirtualClient, NoWorkReportedWithoutGrants) {
  VirtualClient client(spec_host(), default_config(), util::Rng(8));
  for (int i = 0; i < 5 && client.alive(); ++i) {
    EXPECT_EQ(client.make_request().completed_work_units, 0u);
  }
}

}  // namespace
}  // namespace resmodel::boinc

#include "boinc/server.h"

#include <gtest/gtest.h>

#include "sim/fault_model.h"

namespace resmodel::boinc {
namespace {

HostMeasurement typical_measurement() {
  HostMeasurement m;
  m.n_cores = 2;
  m.memory_mb = 2048;
  m.dhrystone_mips = 4000;
  m.whetstone_mips = 2000;
  m.disk_avail_gb = 50;
  m.disk_total_gb = 100;
  m.cpu = trace::CpuFamily::kIntelCore2;
  m.os = trace::OsFamily::kWindowsXp;
  return m;
}

SchedulerRequest request_for(std::uint64_t id, int day,
                             double work_seconds = 86400.0,
                             std::uint32_t completed = 0) {
  SchedulerRequest r;
  r.host_id = id;
  r.day = day;
  r.measurement = typical_measurement();
  r.requested_work_seconds = work_seconds;
  r.completed_work_units = completed;
  // Honest by default: ship the canonical digest for non-empty batches.
  if (completed > 0) {
    r.result_digest = sim::canonical_digest(result_payload(id, completed));
  }
  return r;
}

TEST(ProjectServer, FirstContactCreatesRecord) {
  ProjectServer server;
  server.handle_request(request_for(7, 100));
  EXPECT_EQ(server.host_count(), 1u);
  const trace::TraceStore trace = server.dump_trace();
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.host(0).id, 7u);
  EXPECT_EQ(trace.host(0).created_day, 100);
  EXPECT_EQ(trace.host(0).last_contact_day, 100);
}

TEST(ProjectServer, LaterContactUpdatesLastContactAndMeasurement) {
  ProjectServer server;
  server.handle_request(request_for(7, 100));
  SchedulerRequest second = request_for(7, 150);
  second.measurement.disk_avail_gb = 42.0;
  server.handle_request(second);
  EXPECT_EQ(server.host_count(), 1u);
  const trace::TraceStore trace = server.dump_trace();
  EXPECT_EQ(trace.host(0).created_day, 100);
  EXPECT_EQ(trace.host(0).last_contact_day, 150);
  EXPECT_DOUBLE_EQ(trace.host(0).disk_avail_gb, 42.0);
}

TEST(ProjectServer, OutOfOrderContactDoesNotRewindLastContact) {
  ProjectServer server;
  server.handle_request(request_for(7, 150));
  server.handle_request(request_for(7, 120));
  EXPECT_EQ(server.dump_trace().host(0).last_contact_day, 150);
}

TEST(ProjectServer, GrantsWorkSizedToSpeed) {
  ServerConfig config;
  config.work_unit_cost_mips_days = 4000.0;
  config.max_queued_units = 100;
  ProjectServer server(config);
  // 2 cores x 2000 MIPS / 4000 = 1 unit/day; one day requested -> 1 unit.
  const SchedulerReply reply = server.handle_request(request_for(1, 0));
  EXPECT_EQ(reply.granted_work_units, 1u);
}

TEST(ProjectServer, QueueCapEnforced) {
  ServerConfig config;
  config.max_queued_units = 3;
  ProjectServer server(config);
  // Request a week of work: wants 7 units but cap is 3.
  const SchedulerReply r1 =
      server.handle_request(request_for(1, 0, 7 * 86400.0));
  EXPECT_EQ(r1.granted_work_units, 3u);
  // Nothing completed yet: no more room.
  const SchedulerReply r2 =
      server.handle_request(request_for(1, 1, 7 * 86400.0));
  EXPECT_EQ(r2.granted_work_units, 0u);
}

TEST(ProjectServer, CreditsCompletedWork) {
  ServerConfig config;
  config.credit_per_unit = 10.0;
  config.max_queued_units = 8;
  ProjectServer server(config);
  server.handle_request(request_for(1, 0, 4 * 86400.0));  // grant 4
  const SchedulerReply reply =
      server.handle_request(request_for(1, 4, 0.0, 4));
  EXPECT_DOUBLE_EQ(reply.granted_credit, 40.0);
  EXPECT_DOUBLE_EQ(server.total_credit_granted(), 40.0);
}

TEST(ProjectServer, CannotClaimMoreThanQueued) {
  ProjectServer server;
  server.handle_request(request_for(1, 0, 86400.0));  // grants 1
  const SchedulerReply reply =
      server.handle_request(request_for(1, 1, 0.0, 50));
  EXPECT_DOUBLE_EQ(reply.granted_credit, 10.0);  // only the 1 real unit
}

TEST(ProjectServer, TracksTotals) {
  ProjectServer server;
  server.handle_request(request_for(1, 0));
  server.handle_request(request_for(2, 0));
  server.handle_request(request_for(1, 2));
  EXPECT_EQ(server.total_contacts(), 3u);
  EXPECT_EQ(server.host_count(), 2u);
  EXPECT_GT(server.total_units_granted(), 0u);
}

TEST(ProjectServer, ReplySuggestsContactInterval) {
  ServerConfig config;
  config.contact_interval_days = 3.5;
  ProjectServer server(config);
  const SchedulerReply reply = server.handle_request(request_for(1, 0));
  EXPECT_DOUBLE_EQ(reply.next_contact_delay_days, 3.5);
}

TEST(ProjectServer, RejectsMismatchedDigestWithoutCredit) {
  ServerConfig config;
  config.credit_per_unit = 10.0;
  config.max_queued_units = 8;
  ProjectServer server(config);
  server.handle_request(request_for(1, 0, 4 * 86400.0));  // grant 4
  SchedulerRequest bad = request_for(1, 4, 0.0, 4);
  bad.result_digest =
      sim::corrupted_digest(result_payload(1, 4), /*host_salt=*/1);
  const SchedulerReply reply = server.handle_request(bad);
  EXPECT_FALSE(reply.result_valid);
  EXPECT_DOUBLE_EQ(reply.granted_credit, 0.0);
  EXPECT_EQ(server.total_invalid_result_units(), 4u);
  // The invalid units still left the queue: room reopens for new grants.
  const SchedulerReply regrant =
      server.handle_request(request_for(1, 5, 4 * 86400.0));
  EXPECT_EQ(regrant.granted_work_units, 4u);
}

TEST(ProjectServer, EmptyBatchIsAlwaysValid) {
  ProjectServer server;
  const SchedulerReply reply = server.handle_request(request_for(1, 0));
  EXPECT_TRUE(reply.result_valid);
}

TEST(ProjectServer, WritesOffReportedLostUnits) {
  ServerConfig config;
  config.max_queued_units = 8;
  ProjectServer server(config);
  server.handle_request(request_for(1, 0, 4 * 86400.0));  // grant 4
  SchedulerRequest crash = request_for(1, 2);
  crash.lost_work_units = 4;
  const SchedulerReply reply = server.handle_request(crash);
  EXPECT_TRUE(reply.result_valid);
  EXPECT_EQ(server.total_units_lost(), 4u);
  // Written-off units free the queue immediately: the same contact's
  // grant already had room again.
  EXPECT_EQ(reply.granted_work_units, 1u);  // 2 cores x 2000/4000 x 1 day
}

TEST(ProjectServer, ExpiresGrantsPastReportDeadline) {
  ServerConfig config;
  config.max_queued_units = 4;
  config.report_deadline_days = 3.0;
  ProjectServer server(config);
  server.handle_request(request_for(1, 0, 4 * 86400.0));  // grant 4, due day 3
  // Day 2: still within deadline, nothing expires, queue full.
  const SchedulerReply r2 = server.handle_request(request_for(1, 2));
  EXPECT_EQ(server.total_units_expired(), 0u);
  EXPECT_EQ(r2.granted_work_units, 0u);
  // Day 5: the day-0 grant is past due — written off, room reopens.
  const SchedulerReply r5 =
      server.handle_request(request_for(1, 5, 4 * 86400.0));
  EXPECT_EQ(server.total_units_expired(), 4u);
  EXPECT_EQ(r5.granted_work_units, 4u);
}

TEST(ProjectServer, LateReportAfterExpiryEarnsNothing) {
  ServerConfig config;
  config.max_queued_units = 4;
  config.report_deadline_days = 2.0;
  ProjectServer server(config);
  server.handle_request(request_for(1, 0, 4 * 86400.0));  // grant 4, due day 2
  // Day 10, empty-handed contact: the grant expires server-side.
  (void)server.handle_request(request_for(1, 10, 0.0));
  EXPECT_EQ(server.total_units_expired(), 4u);
  // Day 11: the host finally reports the stale batch — no queued units
  // back it, so no credit.
  const SchedulerReply late =
      server.handle_request(request_for(1, 11, 0.0, 4));
  EXPECT_DOUBLE_EQ(late.granted_credit, 0.0);
}

TEST(ProjectServer, ZeroDeadlineNeverExpires) {
  ServerConfig config;
  config.max_queued_units = 4;
  config.report_deadline_days = 0.0;
  ProjectServer server(config);
  server.handle_request(request_for(1, 0, 4 * 86400.0));
  (void)server.handle_request(request_for(1, 100000));
  EXPECT_EQ(server.total_units_expired(), 0u);
}

}  // namespace
}  // namespace resmodel::boinc

#include "boinc/simulation.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace resmodel::boinc {
namespace {

CollectionConfig small_config() {
  CollectionConfig config;
  config.population.seed = 11;
  config.population.target_active_hosts = 400;
  // Shorter window keeps the test quick while spanning several years.
  config.population.sim_start = util::ModelDate::from_ymd(2005, 1, 1);
  config.population.sim_end = util::ModelDate::from_ymd(2008, 1, 1);
  config.client.mean_contact_interval_days = 4.0;
  return config;
}

const CollectionResult& shared_result() {
  static const CollectionResult kResult = run_collection(small_config());
  return kResult;
}

TEST(Collection, ProducesHostsAndContacts) {
  const CollectionResult& r = shared_result();
  EXPECT_GT(r.hosts_created, 1000u);
  EXPECT_EQ(r.trace.size(), r.hosts_created);
  EXPECT_GT(r.total_contacts, r.hosts_created);  // multiple contacts/host
}

TEST(Collection, WorkEconomyIsConsistent) {
  const CollectionResult& r = shared_result();
  EXPECT_GT(r.total_units_granted, 0u);
  EXPECT_GT(r.total_credit_granted, 0.0);
  // Credit can only come from granted units (10 credit each by default).
  EXPECT_LE(r.total_credit_granted, 10.0 * r.total_units_granted);
}

TEST(Collection, TraceWindowsRespectSimulation) {
  const CollectionConfig config = small_config();
  const std::int32_t start = config.population.sim_start.day_index();
  const std::int32_t end = config.population.sim_end.day_index();
  for (const trace::HostRecord& h : shared_result().trace.hosts()) {
    ASSERT_GE(h.created_day, start);
    ASSERT_LE(h.last_contact_day, end);
    ASSERT_GE(h.last_contact_day, h.created_day);
  }
}

TEST(Collection, ActivePopulationNearTarget) {
  const CollectionResult& r = shared_result();
  const std::size_t active =
      r.trace.active_count(util::ModelDate::from_ymd(2007, 1, 1));
  EXPECT_GT(active, 240u);
  EXPECT_LT(active, 560u);
}

TEST(Collection, CollectedResourcesLookLikePopulation) {
  const CollectionResult& r = shared_result();
  const trace::ResourceSnapshot snap =
      r.trace.snapshot(util::ModelDate::from_ymd(2007, 1, 1));
  ASSERT_GT(snap.size(), 100u);
  // 2007-ish population: these bands are intentionally loose.
  const double mean_cores = stats::mean(snap.cores);
  EXPECT_GT(mean_cores, 1.0);
  EXPECT_LT(mean_cores, 3.0);
  const double mean_whet = stats::mean(snap.whetstone_mips);
  EXPECT_GT(mean_whet, 800.0);
  EXPECT_LT(mean_whet, 2500.0);
}

TEST(Collection, DeterministicForFixedSeed) {
  CollectionConfig config = small_config();
  config.population.target_active_hosts = 100;
  const CollectionResult a = run_collection(config);
  const CollectionResult b = run_collection(config);
  EXPECT_EQ(a.hosts_created, b.hosts_created);
  EXPECT_EQ(a.total_contacts, b.total_contacts);
  EXPECT_DOUBLE_EQ(a.total_credit_granted, b.total_credit_granted);
}

TEST(Collection, FinalUtilityAllocationCoversSnapshot) {
  CollectionConfig config = small_config();
  config.population.target_active_hosts = 100;
  config.allocate_final_utility = true;
  const CollectionResult r = run_collection(config);

  // The allocation runs on the latest populated plausible snapshot of
  // the window; replicate the walk-back to pin the exact host count.
  std::size_t expected_hosts = 0;
  for (std::int32_t day = config.population.sim_end.day_index();
       day >= config.population.sim_start.day_index(); --day) {
    expected_hosts =
        r.trace.snapshot_plausible(util::ModelDate::from_day_index(day))
            .size();
    if (expected_hosts > 0) break;
  }
  ASSERT_GT(expected_hosts, 0u);
  EXPECT_EQ(r.final_allocation_hosts, expected_hosts);

  const auto apps = sim::paper_applications();
  ASSERT_EQ(r.final_allocation.total_utility.size(), apps.size());
  std::size_t assigned = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    EXPECT_GT(r.final_allocation.total_utility[a], 0.0);
    assigned += r.final_allocation.hosts_assigned[a];
  }
  EXPECT_EQ(assigned, expected_hosts);

  // Off by default: the report stays empty.
  config.allocate_final_utility = false;
  const CollectionResult off = run_collection(config);
  EXPECT_EQ(off.final_allocation_hosts, 0u);
  EXPECT_TRUE(off.final_allocation.total_utility.empty());
}

TEST(Collection, MeasuredDiskReflectsDriftNotSpec) {
  // At least some hosts should report a last-measured disk different from
  // any single fixed value (i.e. the drift path executed).
  const CollectionResult& r = shared_result();
  std::size_t hosts_checked = 0;
  std::size_t different = 0;
  for (const trace::HostRecord& h : r.trace.hosts()) {
    if (h.lifetime_days() < 30) continue;
    ++hosts_checked;
    if (h.disk_avail_gb != h.disk_total_gb) ++different;
    if (hosts_checked > 500) break;
  }
  EXPECT_GT(different, hosts_checked / 2);
}

}  // namespace
}  // namespace resmodel::boinc

// The batched structure-of-arrays generation engine: equivalence with the
// per-host path, deterministic parallelism, and pluggable correlation
// models end to end.
#include <gtest/gtest.h>

#include <memory>

#include "core/host_generator.h"
#include "model/empirical_rank_copula.h"
#include "model/independent.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace resmodel::core {
namespace {

const HostGenerator& paper_generator() {
  static const HostGenerator kGen(paper_params());
  return kGen;
}

void expect_same_host(const GeneratedHost& a, const GeneratedHost& b,
                      std::size_t i) {
  ASSERT_EQ(a.n_cores, b.n_cores) << i;
  ASSERT_DOUBLE_EQ(a.memory_per_core_mb, b.memory_per_core_mb) << i;
  ASSERT_DOUBLE_EQ(a.memory_mb, b.memory_mb) << i;
  ASSERT_DOUBLE_EQ(a.whetstone_mips, b.whetstone_mips) << i;
  ASSERT_DOUBLE_EQ(a.dhrystone_mips, b.dhrystone_mips) << i;
  ASSERT_DOUBLE_EQ(a.disk_avail_gb, b.disk_avail_gb) << i;
}

TEST(GeneratedHostBatch, ResizeAndRowAccess) {
  GeneratedHostBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.resize(3);
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch.memory_mb.size(), 3u);
  EXPECT_EQ(batch.disk_avail_gb.size(), 3u);
  batch.n_cores[1] = 4;
  batch.whetstone_mips[1] = 2000.0;
  const GeneratedHost h = batch.host(1);
  EXPECT_EQ(h.n_cores, 4);
  EXPECT_DOUBLE_EQ(h.whetstone_mips, 2000.0);
}

// The SoA engine hoists the date-dependent tables but must consume the rng
// exactly like generate(): element-wise bit-identical output.
TEST(GeneratedHostBatch, BatchMatchesPerHostGeneration) {
  const auto date = util::ModelDate::from_ymd(2009, 6, 1);
  util::Rng rng_batch(41), rng_loop(41);
  const GeneratedHostBatch batch =
      paper_generator().generate_batch(date, 3000, rng_batch);
  const std::vector<GeneratedHost> loop =
      paper_generator().generate_many(date, 3000, rng_loop);
  ASSERT_EQ(batch.size(), loop.size());
  for (std::size_t i = 0; i < loop.size(); ++i) {
    expect_same_host(batch.host(i), loop[i], i);
  }
}

// The satellite requirement: generate_batch_parallel(seed, threads=1) ==
// (threads=8).
TEST(GeneratedHostBatch, ParallelThreadCountInvariant) {
  const auto date = util::ModelDate::from_ymd(2010, 6, 1);
  const GeneratedHostBatch one =
      paper_generator().generate_batch_parallel(date, 20000, 99, 1);
  const GeneratedHostBatch eight =
      paper_generator().generate_batch_parallel(date, 20000, 99, 8);
  ASSERT_EQ(one.size(), eight.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_same_host(one.host(i), eight.host(i), i);
  }
}

TEST(GeneratedHostBatch, ParallelMatchesLegacyAoSParallel) {
  const auto date = util::ModelDate::from_ymd(2010, 3, 1);
  const GeneratedHostBatch batch =
      paper_generator().generate_batch_parallel(date, 9000, 5, 4);
  const std::vector<GeneratedHost> aos =
      paper_generator().generate_many_parallel(date, 9000, 5, 2);
  ASSERT_EQ(batch.size(), aos.size());
  for (std::size_t i = 0; i < aos.size(); ++i) {
    expect_same_host(batch.host(i), aos[i], i);
  }
}

TEST(GeneratedHostBatch, ToHostsAndColumnsAgree) {
  const auto date = util::ModelDate::from_ymd(2008, 1, 1);
  util::Rng rng(43);
  const GeneratedHostBatch batch =
      paper_generator().generate_batch(date, 500, rng);
  const std::vector<GeneratedHost> hosts = batch.to_hosts();
  const GeneratedColumns from_batch = columns_of(batch);
  const GeneratedColumns from_hosts = columns_of(hosts);
  ASSERT_EQ(from_batch.cores.size(), from_hosts.cores.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    ASSERT_DOUBLE_EQ(from_batch.cores[i], from_hosts.cores[i]);
    ASSERT_DOUBLE_EQ(from_batch.memory_per_core_mb[i],
                     from_hosts.memory_per_core_mb[i]);
    ASSERT_DOUBLE_EQ(from_batch.disk_avail_gb[i],
                     from_hosts.disk_avail_gb[i]);
  }
}

TEST(GeneratedHostBatch, BatchMomentsTrackLaws) {
  const ModelParams p = paper_params();
  const auto date = util::ModelDate::from_ymd(2010, 1, 1);
  const GeneratedHostBatch batch =
      paper_generator().generate_batch_parallel(date, 50000, 7, 0);
  const double t = date.t();
  const GeneratedColumns cols = columns_of(batch);
  EXPECT_NEAR(stats::mean(cols.dhrystone_mips), p.dhrystone.mean(t),
              p.dhrystone.mean(t) * 0.03);
  EXPECT_NEAR(stats::mean(cols.whetstone_mips), p.whetstone.mean(t),
              p.whetstone.mean(t) * 0.03);
}

// Plugging the Independent model removes the benchmark coupling while the
// emergent cores-memory product correlation survives — the ablation the
// paper argues from, now a one-line model swap.
TEST(HostGeneratorCorrelationModels, IndependentRemovesBenchmarkCoupling) {
  const HostGenerator gen(paper_params(),
                          std::make_shared<model::Independent>());
  EXPECT_EQ(gen.correlation().name(), "independent");
  util::Rng rng(47);
  const GeneratedHostBatch batch = gen.generate_batch(
      util::ModelDate::from_ymd(2010, 8, 1), 50000, rng);
  const GeneratedColumns cols = columns_of(batch);
  EXPECT_NEAR(stats::pearson(cols.whetstone_mips, cols.dhrystone_mips), 0.0,
              0.03);
  EXPECT_NEAR(
      stats::pearson(cols.memory_per_core_mb, cols.whetstone_mips), 0.0,
      0.03);
  EXPECT_GT(stats::pearson(cols.cores, cols.memory_mb), 0.5);
}

TEST(HostGeneratorCorrelationModels, EmpiricalReproducesRankStructure) {
  // Fit a rank copula on hosts generated by the paper's model, regenerate
  // under it, and compare the rank correlation of the benchmark pair.
  const auto date = util::ModelDate::from_ymd(2010, 8, 1);
  util::Rng rng(53);
  const GeneratedHostBatch reference =
      paper_generator().generate_batch(date, 30000, rng);
  const std::vector<std::vector<double>> cols = {
      reference.memory_per_core_mb, reference.whetstone_mips,
      reference.dhrystone_mips};
  const HostGenerator gen(
      paper_params(),
      std::make_shared<model::EmpiricalRankCopula>(
          model::EmpiricalRankCopula::fit(cols)));
  util::Rng rng2(59);
  const GeneratedHostBatch regenerated =
      gen.generate_batch(date, 30000, rng2);
  EXPECT_NEAR(stats::spearman(regenerated.whetstone_mips,
                              regenerated.dhrystone_mips),
              stats::spearman(reference.whetstone_mips,
                              reference.dhrystone_mips),
              0.05);
}

TEST(HostGeneratorCorrelationModels, RejectsWrongDimension) {
  EXPECT_THROW(HostGenerator(paper_params(),
                             std::make_shared<model::Independent>(2)),
               std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::core

#include "core/host_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "util/rng.h"

namespace resmodel::core {
namespace {

std::vector<GeneratedHost> generate(double year, std::size_t n,
                                    std::uint64_t seed = 1) {
  const HostGenerator gen(paper_params());
  util::Rng rng(seed);
  return gen.generate_many(util::ModelDate::from_year(year), n, rng);
}

TEST(HostGenerator, CoreCountsAreModelValues) {
  const std::set<int> allowed = {1, 2, 4, 8, 16};
  for (const GeneratedHost& h : generate(2010.0, 5000)) {
    ASSERT_TRUE(allowed.count(h.n_cores)) << h.n_cores;
  }
}

TEST(HostGenerator, PerCoreMemoryIsDiscrete) {
  const std::set<double> allowed = {256, 512, 768, 1024, 1536, 2048, 4096};
  for (const GeneratedHost& h : generate(2009.0, 5000)) {
    ASSERT_TRUE(allowed.count(h.memory_per_core_mb)) << h.memory_per_core_mb;
  }
}

TEST(HostGenerator, TotalMemoryIsProduct) {
  for (const GeneratedHost& h : generate(2008.0, 1000)) {
    ASSERT_DOUBLE_EQ(h.memory_mb, h.memory_per_core_mb * h.n_cores);
  }
}

TEST(HostGenerator, AllResourcesPositive) {
  for (const GeneratedHost& h : generate(2006.0, 5000)) {
    ASSERT_GT(h.whetstone_mips, 0.0);
    ASSERT_GT(h.dhrystone_mips, 0.0);
    ASSERT_GT(h.disk_avail_gb, 0.0);
    ASSERT_GE(h.n_cores, 1);
  }
}

TEST(HostGenerator, BenchmarkMomentsTrackLaws) {
  const ModelParams p = paper_params();
  for (double year : {2006.0, 2008.0, 2010.0}) {
    const auto hosts = generate(year, 40000, 7);
    const GeneratedColumns cols = columns_of(hosts);
    const double t = util::ModelDate::from_year(year).t();
    EXPECT_NEAR(stats::mean(cols.dhrystone_mips), p.dhrystone.mean(t),
                p.dhrystone.mean(t) * 0.03)
        << year;
    EXPECT_NEAR(stats::mean(cols.whetstone_mips), p.whetstone.mean(t),
                p.whetstone.mean(t) * 0.03)
        << year;
    EXPECT_NEAR(stats::stddev(cols.dhrystone_mips), p.dhrystone.stddev(t),
                p.dhrystone.stddev(t) * 0.06)
        << year;
  }
}

TEST(HostGenerator, DiskMomentsTrackLaws) {
  const ModelParams p = paper_params();
  const auto hosts = generate(2010.0, 60000, 11);
  const GeneratedColumns cols = columns_of(hosts);
  const double t = util::ModelDate::from_year(2010.0).t();
  EXPECT_NEAR(stats::mean(cols.disk_avail_gb), p.disk_gb.mean(t),
              p.disk_gb.mean(t) * 0.05);
  EXPECT_NEAR(stats::stddev(cols.disk_avail_gb), p.disk_gb.stddev(t),
              p.disk_gb.stddev(t) * 0.10);
}

TEST(HostGenerator, ReproducesTableVIIICorrelations) {
  // Table VIII structure: cores-memory ~ 0.7 (emergent), strongly
  // positive whet-dhry, positive mem/core-benchmark coupling, ~0 disk.
  // Exact renormalization keeps whet-dhry at the latent R (0.639; the
  // paper's own generated table shows 0.505 with the same structure), and
  // the discrete mem/core transform attenuates its latent 0.25/0.306.
  const auto hosts = generate(2010.67, 50000, 13);
  const GeneratedColumns cols = columns_of(hosts);
  EXPECT_NEAR(stats::pearson(cols.cores, cols.memory_mb), 0.727, 0.06);
  EXPECT_NEAR(stats::pearson(cols.whetstone_mips, cols.dhrystone_mips), 0.639,
              0.03);
  const double mpc_whet =
      stats::pearson(cols.memory_per_core_mb, cols.whetstone_mips);
  EXPECT_GT(mpc_whet, 0.15);
  EXPECT_LT(mpc_whet, 0.32);
  EXPECT_NEAR(stats::pearson(cols.disk_avail_gb, cols.memory_mb), 0.0, 0.03);
  EXPECT_NEAR(stats::pearson(cols.disk_avail_gb, cols.whetstone_mips), 0.0,
              0.03);
}

TEST(HostGenerator, MemPerCoreNearlyUncorrelatedWithCores) {
  // §V-E's design goal: per-core memory independent of core count.
  const auto hosts = generate(2010.0, 50000, 17);
  const GeneratedColumns cols = columns_of(hosts);
  EXPECT_NEAR(stats::pearson(cols.cores, cols.memory_per_core_mb), 0.0, 0.03);
}

TEST(HostGenerator, NewerHostsHaveMoreOfEverything) {
  const auto old_hosts = columns_of(generate(2006.0, 20000, 19));
  const auto new_hosts = columns_of(generate(2010.0, 20000, 23));
  EXPECT_GT(stats::mean(new_hosts.cores), stats::mean(old_hosts.cores));
  EXPECT_GT(stats::mean(new_hosts.memory_mb),
            stats::mean(old_hosts.memory_mb));
  EXPECT_GT(stats::mean(new_hosts.dhrystone_mips),
            stats::mean(old_hosts.dhrystone_mips));
  EXPECT_GT(stats::mean(new_hosts.disk_avail_gb),
            stats::mean(old_hosts.disk_avail_gb));
}

TEST(HostGenerator, DeterministicForFixedSeed) {
  const auto a = generate(2009.0, 100, 31);
  const auto b = generate(2009.0, 100, 31);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].n_cores, b[i].n_cores);
    ASSERT_DOUBLE_EQ(a[i].whetstone_mips, b[i].whetstone_mips);
    ASSERT_DOUBLE_EQ(a[i].disk_avail_gb, b[i].disk_avail_gb);
  }
}

TEST(HostGenerator, RejectsInvalidParams) {
  ModelParams p = paper_params();
  p.resource_correlation(0, 1) = 0.9;  // asymmetric
  EXPECT_THROW(HostGenerator{p}, std::invalid_argument);
}

TEST(HostGenerator, ParallelGenerationIsThreadCountInvariant) {
  const HostGenerator gen(paper_params());
  const auto date = util::ModelDate::from_ymd(2010, 6, 1);
  const auto one = gen.generate_many_parallel(date, 10000, 99, 1);
  const auto four = gen.generate_many_parallel(date, 10000, 99, 4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    ASSERT_EQ(one[i].n_cores, four[i].n_cores);
    ASSERT_DOUBLE_EQ(one[i].whetstone_mips, four[i].whetstone_mips);
    ASSERT_DOUBLE_EQ(one[i].disk_avail_gb, four[i].disk_avail_gb);
  }
}

TEST(HostGenerator, ParallelGenerationMatchesModelMoments) {
  const HostGenerator gen(paper_params());
  const auto date = util::ModelDate::from_ymd(2010, 1, 1);
  const auto hosts = gen.generate_many_parallel(date, 50000, 7, 0);
  const GeneratedColumns cols = columns_of(hosts);
  const ModelParams p = paper_params();
  const double t = date.t();
  EXPECT_NEAR(stats::mean(cols.dhrystone_mips), p.dhrystone.mean(t),
              p.dhrystone.mean(t) * 0.03);
  EXPECT_NEAR(stats::mean(cols.whetstone_mips), p.whetstone.mean(t),
              p.whetstone.mean(t) * 0.03);
}

TEST(HostGenerator, ParallelGenerationDifferentSeedsDiffer) {
  const HostGenerator gen(paper_params());
  const auto date = util::ModelDate::from_ymd(2010, 6, 1);
  const auto a = gen.generate_many_parallel(date, 100, 1, 2);
  const auto b = gen.generate_many_parallel(date, 100, 2, 2);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].whetstone_mips == b[i].whetstone_mips) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(ColumnsOf, EmptyInput) {
  const GeneratedColumns cols = columns_of(std::vector<GeneratedHost>{});
  EXPECT_TRUE(cols.cores.empty());
  EXPECT_TRUE(cols.disk_avail_gb.empty());
}

}  // namespace
}  // namespace resmodel::core

#include "core/validation.h"

#include <gtest/gtest.h>

#include "core/host_generator.h"
#include "util/rng.h"

namespace resmodel::core {
namespace {

trace::ResourceSnapshot snapshot_from(const std::vector<GeneratedHost>& hosts) {
  trace::ResourceSnapshot snap;
  for (const GeneratedHost& h : hosts) {
    snap.cores.push_back(static_cast<double>(h.n_cores));
    snap.memory_mb.push_back(h.memory_mb);
    snap.memory_per_core_mb.push_back(h.memory_per_core_mb);
    snap.whetstone_mips.push_back(h.whetstone_mips);
    snap.dhrystone_mips.push_back(h.dhrystone_mips);
    snap.disk_avail_gb.push_back(h.disk_avail_gb);
  }
  return snap;
}

TEST(TwoSampleKs, IdenticalSamplesGiveZero) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(two_sample_ks(xs, xs), 0.0);
}

TEST(TwoSampleKs, DisjointSamplesGiveOne) {
  EXPECT_DOUBLE_EQ(two_sample_ks({1, 2, 3}, {10, 11, 12}), 1.0);
}

TEST(TwoSampleKs, EmptyGivesOne) {
  EXPECT_DOUBLE_EQ(two_sample_ks({}, {1.0}), 1.0);
}

TEST(TwoSampleKs, KnownHalfShift) {
  // {1,2} vs {2,3}: max CDF gap is 0.5 (at x in [1,2)).
  EXPECT_DOUBLE_EQ(two_sample_ks({1, 2}, {2, 3}), 0.5);
}

TEST(CompareResources, SameModelSamplesAreClose) {
  // Generated vs "actual" drawn from the same model: the Figure-12
  // situation in the ideal case. Mean diffs should be within a few
  // percent and KS small.
  const HostGenerator gen(paper_params());
  util::Rng rng_a(1), rng_b(2);
  const auto date = util::ModelDate::from_ymd(2010, 9, 1);
  const auto actual = gen.generate_many(date, 20000, rng_a);
  const auto generated = gen.generate_many(date, 20000, rng_b);
  const auto comparisons =
      compare_resources(snapshot_from(actual), generated);
  ASSERT_EQ(comparisons.size(), 5u);
  for (const ResourceComparison& c : comparisons) {
    EXPECT_LT(c.mean_diff_fraction, 0.05) << c.name;
    EXPECT_LT(c.ks_statistic, 0.03) << c.name;
  }
}

TEST(CompareResources, DetectsDeliberateMismatch) {
  const HostGenerator gen(paper_params());
  util::Rng rng_a(3), rng_b(4);
  const auto actual =
      gen.generate_many(util::ModelDate::from_ymd(2006, 1, 1), 5000, rng_a);
  const auto generated =
      gen.generate_many(util::ModelDate::from_ymd(2010, 9, 1), 5000, rng_b);
  const auto comparisons =
      compare_resources(snapshot_from(actual), generated);
  // Four years of growth: every resource mean should be visibly off.
  for (const ResourceComparison& c : comparisons) {
    EXPECT_GT(c.mean_diff_fraction, 0.10) << c.name;
  }
}

TEST(CompareResources, NamesInPaperOrder) {
  const HostGenerator gen(paper_params());
  util::Rng rng(5);
  const auto hosts =
      gen.generate_many(util::ModelDate::from_ymd(2010, 1, 1), 100, rng);
  const auto comparisons = compare_resources(snapshot_from(hosts), hosts);
  EXPECT_EQ(comparisons[0].name, "Cores");
  EXPECT_EQ(comparisons[1].name, "Memory (MB)");
  EXPECT_EQ(comparisons[4].name, "Avail Disk (GB)");
}

TEST(GeneratedCorrelationMatrix, MatchesTableVIIIShape) {
  const HostGenerator gen(paper_params());
  util::Rng rng(6);
  const auto hosts =
      gen.generate_many(util::ModelDate::from_ymd(2010, 9, 1), 40000, rng);
  const stats::Matrix m = generated_correlation_matrix(hosts);
  ASSERT_EQ(m.rows(), 6u);
  // Table VIII's headline structure (see host_generator_test for why
  // whet-dhry sits at the latent 0.639 rather than the paper's 0.505).
  EXPECT_NEAR(m(0, 1), 0.727, 0.06);  // cores-memory
  EXPECT_NEAR(m(3, 4), 0.639, 0.05);  // whet-dhry
  EXPECT_GT(m(2, 3), 0.15);           // mem/core-whet (attenuated 0.25)
  EXPECT_LT(m(2, 3), 0.35);
  EXPECT_NEAR(m(5, 0), 0.0, 0.03);    // disk uncorrelated
}

}  // namespace
}  // namespace resmodel::core

// The central closed-loop test: generate a synthetic trace from known laws
// and verify the pipeline recovers them.
#include "core/fit_pipeline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "synth/population.h"

namespace resmodel::core {
namespace {

// One shared trace for the whole suite (generation is the expensive part).
const trace::TraceStore& shared_trace() {
  static const trace::TraceStore kTrace = [] {
    synth::PopulationConfig config;
    config.seed = 2011;
    config.target_active_hosts = 6000;
    return synth::generate_population(config);
  }();
  return kTrace;
}

const FitReport& shared_report() {
  static const FitReport kReport = fit_model(shared_trace());
  return kReport;
}

TEST(FitPipeline, DiscardsImplausibleFraction) {
  const FitReport& report = shared_report();
  EXPECT_GT(report.discarded_hosts, 0u);
  const double fraction =
      static_cast<double>(report.discarded_hosts) /
      static_cast<double>(report.discarded_hosts + report.fitted_hosts);
  // The paper discarded 0.12%; our synthetic trace plants ~0.12% too
  // (corruption is applied before censoring so allow a loose band).
  EXPECT_LT(fraction, 0.01);
}

TEST(FitPipeline, RecoversCoreRatioLaws) {
  const FitReport& report = shared_report();
  ASSERT_EQ(report.core_ratios.size(), 4u);
  // 1:2 ratio, paper a=3.369 b=-0.5004.
  EXPECT_NEAR(report.core_ratios[0].law.a, 3.369, 1.0);
  EXPECT_NEAR(report.core_ratios[0].law.b, -0.5004, 0.12);
  EXPECT_LT(report.core_ratios[0].law.r, -0.95);
  // 2:4 ratio, paper a=17.49 b=-0.3217.
  EXPECT_NEAR(report.core_ratios[1].law.a, 17.49, 6.0);
  EXPECT_NEAR(report.core_ratios[1].law.b, -0.3217, 0.10);
  EXPECT_LT(report.core_ratios[1].law.r, -0.9);
}

TEST(FitPipeline, RecoversMemoryRatioDecayDirections) {
  const FitReport& report = shared_report();
  ASSERT_EQ(report.memory_ratios.size(), 6u);
  for (const RatioSeries& s : report.memory_ratios) {
    // Every per-core-memory ratio in Table V decays (b < 0) as hosts move
    // to more memory.
    EXPECT_LT(s.law.b, 0.05) << s.numerator_value << ":" << s.denominator_value;
  }
}

TEST(FitPipeline, RecoversBenchmarkMomentLaws) {
  const FitReport& report = shared_report();
  // Paper: Dhrystone mean a=2064 b=0.1709; Whetstone mean a=1179 b=0.1157.
  EXPECT_NEAR(report.dhrystone_mean.law.a, 2064.0, 250.0);
  EXPECT_NEAR(report.dhrystone_mean.law.b, 0.1709, 0.04);
  EXPECT_GT(report.dhrystone_mean.law.r, 0.97);
  EXPECT_NEAR(report.whetstone_mean.law.a, 1179.0, 140.0);
  EXPECT_NEAR(report.whetstone_mean.law.b, 0.1157, 0.03);
}

TEST(FitPipeline, RecoversDiskMomentLaws) {
  const FitReport& report = shared_report();
  // Paper: disk mean a=31.59 b=0.2691.
  EXPECT_NEAR(report.disk_mean.law.a, 31.59, 6.0);
  EXPECT_NEAR(report.disk_mean.law.b, 0.2691, 0.05);
  EXPECT_GT(report.disk_mean.law.r, 0.95);
}

TEST(FitPipeline, CorrelationMatrixMatchesTableIIIPattern) {
  const stats::Matrix& m = shared_report().full_correlation;
  // Order: cores, memory, mem/core, whet, dhry, disk.
  EXPECT_NEAR(m(0, 1), 0.606, 0.15);  // cores-memory strongly correlated
  EXPECT_NEAR(m(1, 2), 0.627, 0.15);  // memory-mem/core
  EXPECT_NEAR(m(3, 4), 0.639, 0.12);  // whet-dhry
  EXPECT_LT(std::fabs(m(0, 2)), 0.15);  // cores vs mem/core ~ 0
  EXPECT_LT(std::fabs(m(5, 3)), 0.2);   // disk uncorrelated
  EXPECT_LT(std::fabs(m(5, 4)), 0.2);
}

TEST(FitPipeline, AssembledParamsValidateAndMatchSeries) {
  const FitReport& report = shared_report();
  EXPECT_NO_THROW(report.params.validate());
  ASSERT_EQ(report.params.cores.ratios.size(), report.core_ratios.size());
  EXPECT_DOUBLE_EQ(report.params.cores.ratios[0].a,
                   report.core_ratios[0].law.a);
  EXPECT_DOUBLE_EQ(report.params.dhrystone.mean_law.b,
                   report.dhrystone_mean.law.b);
}

TEST(FitPipeline, ParamsSubCorrelationTakenFromFullMatrix) {
  const FitReport& report = shared_report();
  EXPECT_DOUBLE_EQ(report.params.resource_correlation(0, 1),
                   report.full_correlation(2, 3));
  EXPECT_DOUBLE_EQ(report.params.resource_correlation(1, 2),
                   report.full_correlation(3, 4));
}

TEST(FitPipeline, DefaultSnapshotGridSpansModelWindow) {
  const auto dates = default_snapshot_dates();
  ASSERT_GE(dates.size(), 2u);
  EXPECT_EQ(dates.front(), util::ModelDate::from_ymd(2006, 1, 1));
  EXPECT_EQ(dates.back(), util::ModelDate::from_ymd(2010, 1, 1));
}

TEST(FitPipeline, ThrowsOnEmptyTrace) {
  const trace::TraceStore empty;
  EXPECT_THROW(fit_model(empty), std::invalid_argument);
}

TEST(FitPipeline, ThrowsWhenSnapshotsOutsideTrace) {
  trace::TraceStore store;
  trace::HostRecord h;
  h.id = 1;
  h.created_day = 0;
  h.last_contact_day = 10;
  h.n_cores = 1;
  h.memory_mb = 1024;
  h.whetstone_mips = 1000;
  h.dhrystone_mips = 2000;
  h.disk_avail_gb = 10;
  store.add(h);
  FitOptions options;
  options.snapshot_dates = {util::ModelDate::from_ymd(2015, 1, 1),
                            util::ModelDate::from_ymd(2016, 1, 1)};
  EXPECT_THROW(fit_model(store, options), std::invalid_argument);
}

TEST(FitPipeline, ThrowsWithOneSnapshotDate) {
  FitOptions options;
  options.snapshot_dates = {util::ModelDate::from_ymd(2008, 1, 1)};
  EXPECT_THROW(fit_model(shared_trace(), options), std::invalid_argument);
}

TEST(FullCorrelationLabels, SixInPaperOrder) {
  const auto labels = full_correlation_labels();
  ASSERT_EQ(labels.size(), 6u);
  EXPECT_EQ(labels[0], "Cores");
  EXPECT_EQ(labels[5], "Disk");
}

}  // namespace
}  // namespace resmodel::core

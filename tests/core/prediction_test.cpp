#include "core/prediction.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace resmodel::core {
namespace {

TEST(PredictedCoreFractions, ColumnsAreDistributions) {
  const ModelParams p = paper_params();
  const std::vector<double> ts = {3.0, 5.0, 8.0};
  const auto fractions = predicted_core_fractions(p, ts);
  ASSERT_EQ(fractions.size(), p.cores.values.size());
  for (std::size_t j = 0; j < ts.size(); ++j) {
    double total = 0.0;
    for (const auto& row : fractions) total += row[j];
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(PredictedCoreFractions, SingleCoreVanishesBy2014) {
  // Figure 13: "the number of single core hosts decreases to a negligible
  // fraction within three years".
  const ModelParams p = paper_params();
  const auto fractions = predicted_core_fractions(p, {8.0});
  EXPECT_LT(fractions[0][0], 0.05);
}

TEST(PredictedCoreFractions, TwoCoreStillLargeIn2014) {
  // Figure 13: 2-core hosts "comprise roughly 40% of the total by 2014".
  const ModelParams p = paper_params();
  const auto fractions = predicted_core_fractions(p, {8.0});
  EXPECT_NEAR(fractions[1][0], 0.40, 0.10);
}

TEST(PredictedMeanCores, PaperValue2014) {
  EXPECT_NEAR(predicted_mean_cores(paper_params(), 8.0), 4.6, 0.25);
}

TEST(PredictedMemoryDistribution, IsSortedDistribution) {
  const ModelParams p = paper_params();
  const auto dist = predicted_memory_distribution(p, 4.0);
  ASSERT_FALSE(dist.empty());
  double total = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    total += dist[i].probability;
    if (i > 0) EXPECT_GT(dist[i].memory_mb, dist[i - 1].memory_mb);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PredictedMeanMemory, PaperValue2014Is68GB) {
  // §VI-C: "This prediction indicates an average of 6.8 GB per host by
  // 2014". Reproduces with the §V-E six-value memory chain; the full
  // Table-X chain (with the 2GB:4GB ratio) predicts ~8.1 GB instead.
  const ModelParams six = with_memory_capped(paper_params(), 2048.0);
  EXPECT_NEAR(predicted_mean_memory_mb(six, 8.0) / 1024.0, 6.8, 0.7);
  EXPECT_NEAR(predicted_mean_memory_mb(paper_params(), 8.0) / 1024.0, 8.1,
              0.7);
}

TEST(WithMemoryCapped, TruncatesChainAndValidates) {
  const ModelParams six = with_memory_capped(paper_params(), 2048.0);
  EXPECT_EQ(six.memory_per_core_mb.values.back(), 2048.0);
  EXPECT_EQ(six.memory_per_core_mb.ratios.size(), 5u);
  // Core chain untouched.
  EXPECT_EQ(six.cores.values, paper_params().cores.values);
}

TEST(PredictedMemoryCdf, MonotoneInThreshold) {
  const ModelParams p = paper_params();
  const std::vector<double> thresholds = {1024, 2048, 4096, 8192};
  const auto cdf = predicted_memory_cdf_at(p, 6.0, thresholds);
  ASSERT_EQ(cdf.size(), 4u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
  EXPECT_LE(cdf.back(), 1.0 + 1e-12);
}

TEST(PredictedMemoryCdf, SmallMemoryHostsVanishOverTime) {
  const ModelParams p = paper_params();
  const auto now = predicted_memory_cdf_at(p, 3.0, {1024.0});
  const auto later = predicted_memory_cdf_at(p, 8.0, {1024.0});
  EXPECT_LT(later[0], now[0]);
}

TEST(PredictedMoments, MatchLawsDirectly) {
  const ModelParams p = paper_params();
  const MomentPrediction d = predicted_dhrystone(p, 8.0);
  EXPECT_NEAR(d.mean, p.dhrystone.mean(8.0), 1e-9);
  EXPECT_NEAR(d.stddev, p.dhrystone.stddev(8.0), 1e-9);
  const MomentPrediction w = predicted_whetstone(p, 8.0);
  EXPECT_NEAR(w.mean, 2975.0, 35.0);  // paper's 2014 prediction
  const MomentPrediction disk = predicted_disk_gb(p, 8.0);
  EXPECT_NEAR(disk.mean, 272.0, 4.0);
}

TEST(QuantileHost, MedianHostIsModest) {
  const ModelParams p = paper_params();
  const QuantileHost median = predicted_quantile_host(p, 4.0, 0.5);
  EXPECT_GE(median.cores, 1.0);
  EXPECT_LE(median.cores, 4.0);
  EXPECT_GT(median.memory_mb, 0.0);
  EXPECT_GT(median.disk_avail_gb, 0.0);
}

TEST(QuantileHost, BestBeatsWorstEverywhere) {
  const ModelParams p = paper_params();
  const QuantileHost best = predicted_quantile_host(p, 4.0, 0.99);
  const QuantileHost worst = predicted_quantile_host(p, 4.0, 0.01);
  EXPECT_GT(best.cores, worst.cores);
  EXPECT_GT(best.memory_mb, worst.memory_mb);
  EXPECT_GT(best.whetstone_mips, worst.whetstone_mips);
  EXPECT_GT(best.dhrystone_mips, worst.dhrystone_mips);
  EXPECT_GT(best.disk_avail_gb, worst.disk_avail_gb);
}

TEST(QuantileHost, ResourcesNonNegativeAtLowQuantiles) {
  const ModelParams p = paper_params();
  const QuantileHost h = predicted_quantile_host(p, 0.0, 0.001);
  EXPECT_GT(h.whetstone_mips, 0.0);
  EXPECT_GT(h.dhrystone_mips, 0.0);
  EXPECT_GT(h.disk_avail_gb, 0.0);
}

}  // namespace
}  // namespace resmodel::core

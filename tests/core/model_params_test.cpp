#include "core/model_params.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace resmodel::core {
namespace {

TEST(DiscreteRatioChain, PmfSumsToOne) {
  const ModelParams p = paper_params();
  for (double t : {-1.0, 0.0, 2.0, 4.0, 8.0}) {
    const std::vector<double> pmf = p.cores.pmf(t);
    EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-12);
    for (double v : pmf) EXPECT_GE(v, 0.0);
  }
}

TEST(DiscreteRatioChain, PaperCoreMixAt2006) {
  // §V-D: in 2006 the 1-core:2-core ratio was ~3.3:1 and 2:4 was ~14.4:1.
  const ModelParams p = paper_params();
  const std::vector<double> pmf = p.cores.pmf(0.0);
  EXPECT_NEAR(pmf[0] / pmf[1], 3.369, 1e-9);
  EXPECT_NEAR(pmf[1] / pmf[2], 17.49, 1e-9);
}

TEST(DiscreteRatioChain, CoreRatioInvertsBy2010) {
  // §V-D: "by 2010 the ratio inverted to 1 to 2.5".
  const ModelParams p = paper_params();
  const std::vector<double> pmf = p.cores.pmf(4.0);
  EXPECT_NEAR(pmf[1] / pmf[0], 2.5, 0.35);
}

TEST(DiscreteRatioChain, QuantileMatchesPmf) {
  const ModelParams p = paper_params();
  const std::vector<double> pmf = p.cores.pmf(2.0);
  // u just below the first mass returns the first value; u = 1 the last.
  EXPECT_DOUBLE_EQ(p.cores.quantile(2.0, pmf[0] * 0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.cores.quantile(2.0, 1.0), 16.0);
  // u just above the first mass returns the second value.
  EXPECT_DOUBLE_EQ(p.cores.quantile(2.0, pmf[0] + 1e-12), 2.0);
}

TEST(DiscreteRatioChain, MeanGrowsOverTime) {
  const ModelParams p = paper_params();
  double prev = p.cores.mean(-1.0);
  for (double t = 0.0; t <= 8.0; t += 1.0) {
    const double m = p.cores.mean(t);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(DiscreteRatioChain, PaperPredicts46CoresIn2014) {
  // §VI-C: "The average number of cores per host in 2014 is predicted to
  // be 4.6".
  const ModelParams p = paper_params();
  EXPECT_NEAR(p.cores.mean(8.0), 4.6, 0.25);
}

TEST(DiscreteRatioChain, ValidateRejectsRaggedChain) {
  DiscreteRatioChain chain;
  chain.values = {1, 2, 4};
  chain.ratios = {{1.0, 0.0, 0.0}};  // needs 2 ratios
  EXPECT_THROW(chain.validate(), std::invalid_argument);
}

TEST(DiscreteRatioChain, ValidateRejectsNonAscendingValues) {
  DiscreteRatioChain chain;
  chain.values = {2, 1};
  chain.ratios = {{1.0, 0.0, 0.0}};
  EXPECT_THROW(chain.validate(), std::invalid_argument);
}

TEST(DiscreteRatioChain, ValidateRejectsNonPositiveA) {
  DiscreteRatioChain chain;
  chain.values = {1, 2};
  chain.ratios = {{0.0, 0.0, 0.0}};
  EXPECT_THROW(chain.validate(), std::invalid_argument);
}

TEST(MomentLaws, StddevIsSqrtVariance) {
  const ModelParams p = paper_params();
  EXPECT_NEAR(p.dhrystone.stddev(0.0), std::sqrt(1.379e6), 1e-6);
}

TEST(PaperParams, TableVIValuesAt2006) {
  const ModelParams p = paper_params();
  EXPECT_NEAR(p.dhrystone.mean(0.0), 2064.0, 1e-9);
  EXPECT_NEAR(p.whetstone.mean(0.0), 1179.0, 1e-9);
  EXPECT_NEAR(p.disk_gb.mean(0.0), 31.59, 1e-9);
}

TEST(PaperParams, PredictedMoments2014MatchPaper) {
  // §VI-C: 2014 predictions — Dhrystone (8100, 4419), Whetstone
  // (2975, 868), disk (272.0, 434.5).
  const ModelParams p = paper_params();
  EXPECT_NEAR(p.dhrystone.mean(8.0), 8100.0, 100.0);
  EXPECT_NEAR(p.dhrystone.stddev(8.0), 4419.0, 60.0);
  EXPECT_NEAR(p.whetstone.mean(8.0), 2975.0, 35.0);
  EXPECT_NEAR(p.whetstone.stddev(8.0), 868.0, 15.0);
  EXPECT_NEAR(p.disk_gb.mean(8.0), 272.0, 4.0);
  EXPECT_NEAR(p.disk_gb.stddev(8.0), 434.5, 8.0);
}

TEST(PaperParams, MemoryChainCoversPublishedValues) {
  const ModelParams p = paper_params();
  EXPECT_EQ(p.memory_per_core_mb.values,
            (std::vector<double>{256, 512, 768, 1024, 1536, 2048, 4096}));
  EXPECT_EQ(p.memory_per_core_mb.ratios.size(), 6u);
}

TEST(PaperParams, CorrelationMatrixIsPaperR) {
  const ModelParams p = paper_params();
  EXPECT_DOUBLE_EQ(p.resource_correlation(0, 1), 0.250);
  EXPECT_DOUBLE_EQ(p.resource_correlation(0, 2), 0.306);
  EXPECT_DOUBLE_EQ(p.resource_correlation(1, 2), 0.639);
}

TEST(PaperParams, Validates) { EXPECT_NO_THROW(paper_params().validate()); }

TEST(ModelParams, SerializationRoundTrip) {
  const ModelParams p = paper_params();
  const ModelParams q = ModelParams::deserialize(p.serialize());
  EXPECT_EQ(q.cores.values, p.cores.values);
  EXPECT_EQ(q.memory_per_core_mb.values, p.memory_per_core_mb.values);
  for (std::size_t i = 0; i < p.cores.ratios.size(); ++i) {
    EXPECT_DOUBLE_EQ(q.cores.ratios[i].a, p.cores.ratios[i].a);
    EXPECT_DOUBLE_EQ(q.cores.ratios[i].b, p.cores.ratios[i].b);
  }
  EXPECT_DOUBLE_EQ(q.dhrystone.mean_law.a, p.dhrystone.mean_law.a);
  EXPECT_DOUBLE_EQ(q.disk_gb.variance_law.b, p.disk_gb.variance_law.b);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(q.resource_correlation(r, c),
                       p.resource_correlation(r, c));
    }
  }
}

TEST(ModelParams, DeserializeRejectsGarbage) {
  EXPECT_THROW(ModelParams::deserialize("model = other\n"),
               std::runtime_error);
  EXPECT_THROW(ModelParams::deserialize(""), std::runtime_error);
}

TEST(ModelParams, ValidateRejectsBadCorrelation) {
  ModelParams p = paper_params();
  p.resource_correlation(0, 1) = 2.0;  // breaks symmetry and PD
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace resmodel::core

#include "core/gpu_model.h"

#include <gtest/gtest.h>

#include <numeric>

#include "synth/population.h"
#include "util/rng.h"

namespace resmodel::core {
namespace {

constexpr double kSep2009 = 3.67;
constexpr double kSep2010 = 4.67;

TEST(GpuModelParams, DefaultsValidate) {
  EXPECT_NO_THROW(paper_gpu_params().validate());
}

TEST(GpuModelParams, RejectsBadInput) {
  GpuModelParams p = paper_gpu_params();
  p.vendor_share_t0 = {1.0};  // wrong size
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = paper_gpu_params();
  p.memory_pmf_t0[0] = -0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = paper_gpu_params();
  p.memory_values_mb = {512, 256};  // not ascending
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = paper_gpu_params();
  p.anchor_t[1] = p.anchor_t[0];
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(GpuModel, AdoptionMatchesPaperAnchors) {
  const GpuModel model(paper_gpu_params());
  EXPECT_NEAR(model.adoption_fraction(kSep2009), 0.127, 1e-9);
  EXPECT_NEAR(model.adoption_fraction(kSep2010), 0.238, 1e-3);
  EXPECT_DOUBLE_EQ(model.adoption_fraction(-5.0), 0.0);  // clamped
  EXPECT_LE(model.adoption_fraction(100.0), 0.95);
}

TEST(GpuModel, VendorPmfInterpolatesTableVII) {
  const GpuModel model(paper_gpu_params());
  const std::vector<double> p2009 = model.vendor_pmf(kSep2009);
  EXPECT_NEAR(p2009[0], 0.825, 0.01);  // GeForce
  EXPECT_NEAR(p2009[1], 0.122, 0.01);  // Radeon
  const std::vector<double> p2010 = model.vendor_pmf(kSep2010);
  EXPECT_NEAR(p2010[0], 0.636, 0.01);
  EXPECT_NEAR(p2010[1], 0.315, 0.01);
  // Normalized everywhere, including outside anchors.
  for (double t : {0.0, 4.0, 9.0}) {
    const std::vector<double> pmf = model.vendor_pmf(t);
    EXPECT_NEAR(std::accumulate(pmf.begin(), pmf.end(), 0.0), 1.0, 1e-12);
  }
}

TEST(GpuModel, MemoryMeanMatchesFigure10) {
  const GpuModel model(paper_gpu_params());
  EXPECT_NEAR(model.mean_memory_mb(kSep2009), 592.7, 20.0);
  EXPECT_NEAR(model.mean_memory_mb(kSep2010), 659.4, 20.0);
}

TEST(GpuModel, SampleRespectsAdoptionRate) {
  const GpuModel model(paper_gpu_params());
  util::Rng rng(1);
  const auto date = util::ModelDate::from_ymd(2010, 9, 1);
  int with_gpu = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const GeneratedGpu gpu = model.sample(date, rng);
    if (gpu.type != trace::GpuType::kNone) {
      ++with_gpu;
      EXPECT_GT(gpu.memory_mb, 0.0);
    } else {
      EXPECT_DOUBLE_EQ(gpu.memory_mb, 0.0);
    }
  }
  EXPECT_NEAR(with_gpu / static_cast<double>(kN), 0.238, 0.01);
}

TEST(GpuModel, SampledMemoryOnGrid) {
  const GpuModel model(paper_gpu_params());
  util::Rng rng(2);
  const auto date = util::ModelDate::from_ymd(2010, 1, 1);
  const auto& values = paper_gpu_params().memory_values_mb;
  for (int i = 0; i < 5000; ++i) {
    const GeneratedGpu gpu = model.sample(date, rng);
    if (gpu.type == trace::GpuType::kNone) continue;
    bool on_grid = false;
    for (double v : values) {
      if (gpu.memory_mb == v) on_grid = true;
    }
    ASSERT_TRUE(on_grid) << gpu.memory_mb;
  }
}

TEST(FitGpuModel, RecoversSynthTrends) {
  synth::PopulationConfig config;
  config.seed = 5;
  config.target_active_hosts = 4000;
  const trace::TraceStore store = synth::generate_population(config);
  const auto fitted = fit_gpu_model(store,
                                    util::ModelDate::from_ymd(2009, 9, 1),
                                    util::ModelDate::from_ymd(2010, 8, 31));
  ASSERT_TRUE(fitted.has_value());
  // The synth trace is calibrated to the paper's anchors; the fitted
  // model should land near them.
  const GpuModel model(*fitted);
  EXPECT_NEAR(model.adoption_fraction(4.67), 0.238, 0.06);
  EXPECT_NEAR(model.vendor_pmf(4.67)[1], 0.315, 0.08);  // Radeon
  EXPECT_NEAR(model.mean_memory_mb(4.67), 659.4, 60.0);
}

TEST(FitGpuModel, FailsWithoutGpuHosts) {
  trace::TraceStore store;
  trace::HostRecord h;
  h.id = 1;
  h.created_day = 0;
  h.last_contact_day = 2000;
  h.n_cores = 1;
  h.memory_mb = 1024;
  h.whetstone_mips = 1000;
  h.dhrystone_mips = 2000;
  h.disk_avail_gb = 10;
  store.add(h);  // no GPU
  EXPECT_FALSE(fit_gpu_model(store, util::ModelDate::from_ymd(2009, 9, 1),
                             util::ModelDate::from_ymd(2010, 9, 1))
                   .has_value());
}

TEST(FitGpuModel, FailsOnReversedAnchors) {
  trace::TraceStore store;
  EXPECT_FALSE(fit_gpu_model(store, util::ModelDate::from_ymd(2010, 9, 1),
                             util::ModelDate::from_ymd(2009, 9, 1))
                   .has_value());
}

}  // namespace
}  // namespace resmodel::core

// The command layer of the resmodel CLI — the "tool for automated model
// generation" the paper published. Each command is a pure function over
// parsed arguments and an output stream so the whole surface is unit
// testable; main() only dispatches.
//
// Commands:
//   synth <out.csv> [active] [seed]        generate a ground-truth trace
//   collect <out.csv> [active] [seed]      run the BOINC-style collection
//   fit <trace.csv> <model.txt>            fit the correlated model
//   generate <model.txt> <date> <n> <out.csv>   synthesize hosts
//   predict <model.txt> <year>             predicted composition
//   validate <model.txt> <trace.csv> <date>     generated-vs-actual check
//   sweep <model.txt> <date> <hosts> [tasks]    parallel policy sweep
//   serve --clients=N --days=D [...]       sharded virtual-time service
//                                          engine over an N-client cohort
//                                          (src/engine/); deterministic
//                                          counters + one timing line
//   backends                               CPU SIMD features + dispatch
//   pack <in.csv> <out.snap>               CSV -> columnar snapshot
//   pack --generate <model.txt> <date> <n> <out.snap>   synthesize direct
//                                          to a sharded snapshot (bounded
//                                          RSS at any population size)
//   unpack <in.snap> [out.csv]             snapshot -> CSV / digest check
//   verify <in.snap>                       checksum walk + damage report
//
// pack/unpack both print per-column CRC32C digest lines; diffing them is
// the bit-identity proof for a round trip (see src/store/README.md).
//
// sweep runs the bag-of-tasks policy x host-model x task-count grid
// (sim::run_policy_sweep) over populations synthesized from the fitted
// model under both the published (Cholesky) and an independence
// dependence structure — the scheduling-conclusions ablation as a CLI
// command. Its --backend= flag selects the kernel-dispatch arm
// (src/backend/); backends prints what the current CPU (and the
// RESMODEL_SIMD mask) lets each request resolve to.
//
// generate and validate accept --correlation=cholesky|independent|empirical
// to swap the dependence structure (src/model/); empirical generation also
// needs --trace=<trace.csv> to fit the rank copula from.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace resmodel::cli {

/// Exit codes: 0 success, 1 usage error, 2 runtime failure.
inline constexpr int kOk = 0;
inline constexpr int kUsage = 1;
inline constexpr int kFailure = 2;

/// Dispatches `args` (excluding argv[0]). Writes human output to `out`
/// and problems to `err`.
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// Individual commands (exposed for tests).
int cmd_synth(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);
int cmd_collect(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
int cmd_fit(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);
int cmd_generate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_predict(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err);
int cmd_validate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_sweep(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);
int cmd_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);
int cmd_backends(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_pack(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err);
int cmd_unpack(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);
int cmd_verify(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);

/// The usage text printed on bad invocations.
std::string usage_text();

}  // namespace resmodel::cli

#!/usr/bin/env python3
"""Diff two google-benchmark JSON files and flag regressions.

    tools/compare_bench.py BASELINE.json NEW.json [options]
    tools/compare_bench.py bench_results/ NEW.json [options]

BASELINE may be a results directory (e.g. bench_results/): it resolves
through the LATEST pointer file when present, otherwise the newest
parseable BENCH_*.json by mtime. Corrupt non-target files encountered
during that scan — including a stale LATEST pointee — are warned about
and skipped, never fatal; only the file finally chosen (or an
explicitly named one) must parse. Tombstoned ``*.corrupt`` files are
ignored entirely.

Compares every benchmark present in BOTH files. By default the compared
metrics are real_time plus every numeric per-benchmark counter the two
entries share; --counters restricts the comparison to the named metrics
only. A metric has REGRESSED when new > old * (1 + threshold) — all the
exported metrics (times, swept blocks, resolved lanes, makespans) are
higher-is-worse. Exit status: 0 clean, 1 regressions found, 2 usage /
input error.

CI note: wall times are only comparable on the same box. The Release CI
smoke therefore diffs the DETERMINISTIC counters only (e.g.
--counters swept_blocks_per_task,resolved_lanes_per_task,makespan_days),
which are a pure function of the kernel's inputs and catch pruning or
scheduling regressions on any machine; time comparisons are for
bench_results/BENCH_*.json pairs recorded on one host.
"""

import argparse
import json
import os
import sys

# Per-benchmark JSON fields that are bookkeeping, never metrics.
NON_METRIC_FIELDS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "time_unit", "family_index",
    "per_family_instance_index", "label", "aggregate_name", "aggregate_unit",
}


def fail(message):
    """Usage / input error: print and exit 2, as the module doc promises.

    (sys.exit(str) would exit 1, conflating input errors with genuine
    regressions — CI gates tell the two apart by status code.)
    """
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def try_load_benchmarks(path):
    """Parse one benchmark JSON file; return (table, error_string)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, f"cannot read '{path}': {e}"
    table = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        table[bench["name"]] = bench
    if not table:
        return None, f"no benchmarks in '{path}'"
    return table, None


def load_benchmarks(path):
    table, error = try_load_benchmarks(path)
    if table is None:
        fail(error)
    return table


def resolve_baseline_dir(directory):
    """Pick the baseline record inside a bench_results-style directory.

    LATEST wins when it points at a parseable file; otherwise fall back
    to the newest parseable BENCH_*.json by mtime. Corrupt files along
    the way (non-targets) are warn-and-skip — only a directory with no
    usable record at all is fatal. ``*.corrupt`` tombstones are never
    candidates.
    """
    latest_pointer = os.path.join(directory, "LATEST")
    if os.path.isfile(latest_pointer):
        with open(latest_pointer) as f:
            name = f.read().strip()
        pointee = os.path.join(directory, name)
        if not name or not os.path.isfile(pointee):
            # Dangling pointer (names a file that no longer exists, e.g.
            # after a manual prune) — distinct from a corrupt pointee so
            # the warning says what actually happened.
            print(f"warning: LATEST points at nonexistent file "
                  f"'{name or '<empty>'}'; falling back to newest "
                  "parseable record", file=sys.stderr)
        else:
            table, error = try_load_benchmarks(pointee)
            if table is not None:
                return pointee, table
            print(f"warning: LATEST pointee skipped: {error}",
                  file=sys.stderr)

    candidates = sorted(
        (entry.path for entry in os.scandir(directory)
         if entry.is_file() and entry.name.startswith("BENCH_")
         and entry.name.endswith(".json")),
        key=os.path.getmtime, reverse=True)
    skipped = 0
    for candidate in candidates:
        table, error = try_load_benchmarks(candidate)
        if table is not None:
            return candidate, table
        skipped += 1
        print(f"warning: skipped corrupt '{candidate}': {error}",
              file=sys.stderr)
    # Zero parseable records is an input error, not a clean run: exit 2
    # with an unambiguous message so a CI gate pointed at an empty or
    # fully corrupt baseline directory fails loudly instead of passing.
    if skipped:
        fail(f"baseline directory '{directory}' has {skipped} BENCH_*.json "
             "record(s) but none parse — every candidate was corrupt")
    fail(f"baseline directory '{directory}' contains no BENCH_*.json "
         "records at all")


def numeric_metrics(entry):
    return {
        key: value
        for key, value in entry.items()
        if key not in NON_METRIC_FIELDS and isinstance(value, (int, float))
    }


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument(
        "baseline",
        help="baseline BENCH_*.json, or a results directory resolved "
             "via LATEST / newest parseable record")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="relative regression threshold (default 0.10 = +10%%)")
    parser.add_argument(
        "--counters", default=None,
        help="comma-separated metric names to compare (default: real_time "
             "plus all shared numeric counters)")
    parser.add_argument(
        "--require-all", action="store_true",
        help="error out when a baseline benchmark is missing from NEW "
             "(default: warn and skip — CI smokes exclude the 100k points)")
    args = parser.parse_args()
    if args.threshold <= 0:
        fail("--threshold must be positive")
    named = ([c for c in args.counters.split(",") if c]
             if args.counters is not None else None)
    if named is not None and not named:
        fail("empty --counters list")

    if os.path.isdir(args.baseline):
        baseline_path, old_table = resolve_baseline_dir(args.baseline)
        print(f"baseline: {baseline_path}")
    else:
        old_table = load_benchmarks(args.baseline)
    new_table = load_benchmarks(args.new)

    regressions = []
    compared = 0
    missing = []
    for name, old in sorted(old_table.items()):
        new = new_table.get(name)
        if new is None:
            missing.append(name)
            continue
        old_metrics = numeric_metrics(old)
        new_metrics = numeric_metrics(new)
        metrics = named if named is not None else sorted(
            set(old_metrics) & set(new_metrics))
        for metric in metrics:
            if metric not in old_metrics or metric not in new_metrics:
                continue  # named counter not exported by this benchmark
            old_value = old_metrics[metric]
            new_value = new_metrics[metric]
            compared += 1
            if old_value == 0:
                ok = new_value == 0
                ratio = float("inf") if not ok else 1.0
            else:
                ratio = new_value / old_value
                ok = new_value <= old_value * (1.0 + args.threshold)
            status = "ok" if ok else "REGRESSED"
            print(f"{name:60s} {metric:28s} {old_value:14.4f} -> "
                  f"{new_value:14.4f}  ({ratio:6.3f}x)  {status}")
            if not ok:
                regressions.append((name, metric, old_value, new_value))

    for name in missing:
        print(f"warning: '{name}' missing from {args.new}; skipped",
              file=sys.stderr)
    if missing and args.require_all:
        fail(f"{len(missing)} baseline benchmark(s) missing "
             "and --require-all set")
    if compared == 0:
        fail("no shared metrics to compare")

    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"+{args.threshold:.0%}:", file=sys.stderr)
        for name, metric, old_value, new_value in regressions:
            print(f"  {name} {metric}: {old_value:.4f} -> {new_value:.4f}",
                  file=sys.stderr)
        return 1
    print(f"\nall {compared} compared metrics within +{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Entry point of the resmodel command-line tool; all logic lives in
// cli_commands.{h,cpp} so it can be unit tested.
#include <iostream>
#include <string>
#include <vector>

#include "cli_commands.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return resmodel::cli::run_cli(args, std::cout, std::cerr);
}

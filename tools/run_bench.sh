#!/usr/bin/env bash
# Builds the Release perf microbenchmarks and records a BENCH_*.json
# trajectory point. Run from anywhere inside the repo:
#
#   tools/run_bench.sh [extra google-benchmark flags...]
#
# Output lands in bench_results/BENCH_<utc-date>_<git-sha>.json so
# successive PRs accumulate a comparable series (same machine assumed).
set -euo pipefail

repo_root="$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"
build_dir="$repo_root/build-release"
out_dir="$repo_root/bench_results"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRESMODEL_BUILD_TESTS=OFF \
  -DRESMODEL_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$build_dir" --target perf_microbench -j "$(nproc)"

mkdir -p "$out_dir"
stamp="$(date -u +%Y%m%d)"
sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo nogit)"
out_file="$out_dir/BENCH_${stamp}_${sha}.json"

"$build_dir/bench/perf_microbench" \
  --benchmark_format=json \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $out_file"

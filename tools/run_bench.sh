#!/usr/bin/env bash
# Builds the Release perf microbenchmarks and records a BENCH_*.json
# trajectory point. Run from anywhere inside the repo:
#
#   tools/run_bench.sh [extra google-benchmark flags...]
#
# Output lands in bench_results/BENCH_<utc-date>_<git-sha>.json so
# successive PRs accumulate a comparable series (same machine assumed).
#
# The recorded JSON must come from a Release build of *our* code: the
# script forces CMAKE_BUILD_TYPE=Release (overriding any stale cache) and
# refuses to keep a run whose "resmodel_build_type" context key is not
# "release". Note google-benchmark's own "library_build_type" key
# describes the distro-packaged libbenchmark shared object — Debian builds
# it without NDEBUG, so that key reads "debug" no matter how resmodel is
# compiled; resmodel_build_type (emitted by perf_microbench itself) is the
# authoritative one.
set -euo pipefail

repo_root="$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"
build_dir="$repo_root/build-release"
out_dir="$repo_root/bench_results"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=Release \
  -DRESMODEL_BUILD_TESTS=OFF \
  -DRESMODEL_BUILD_EXAMPLES=OFF >/dev/null

cached_type="$(grep -E '^CMAKE_BUILD_TYPE:' "$build_dir/CMakeCache.txt" \
               | cut -d= -f2)"
if [[ "$cached_type" != "Release" ]]; then
  echo "error: $build_dir is configured as '$cached_type', not Release" >&2
  echo "hint: rm -rf $build_dir and rerun" >&2
  exit 1
fi

cmake --build "$build_dir" --target perf_microbench -j "$(nproc)"

mkdir -p "$out_dir"
stamp="$(date -u +%Y%m%d)"
sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo nogit)"
out_file="$out_dir/BENCH_${stamp}_${sha}.json"

# The record is written to a .tmp and only renamed into place once every
# validation below has passed: a benchmark crash, a full disk, or a ^C
# mid-run can no longer leave a truncated BENCH_*.json behind for later
# baselines to trip over (one such corrupt record shipped in bb2d309).
tmp_file="$out_file.tmp"
trap 'rm -f "$tmp_file"' EXIT

"$build_dir/bench/perf_microbench" \
  --benchmark_format=json \
  --benchmark_out="$tmp_file" \
  --benchmark_out_format=json \
  "$@"

if ! grep -q '"resmodel_build_type": "release"' "$tmp_file"; then
  echo "error: recorded run was not a Release build of resmodel;" \
       "discarded it" >&2
  exit 1
fi

# Cross-backend/cross-machine trajectories are only comparable when the
# record says which dispatch arm ran and on what silicon; refuse to keep
# a run missing the provenance keys (emitted by perf_microbench itself).
for key in resmodel_backend resmodel_cpu_features; do
  if ! grep -q "\"$key\": " "$tmp_file"; then
    echo "error: recorded run lacks the '$key' context key;" \
         "discarded it" >&2
    exit 1
  fi
  grep -o "\"$key\": \"[^\"]*\"" "$tmp_file" | head -1
done

# The record must be whole, parseable JSON before it earns its real name.
if ! python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$tmp_file"
then
  echo "error: recorded run is not valid JSON; discarded it" >&2
  exit 1
fi

mv "$tmp_file" "$out_file"
trap - EXIT

# Pointer to the newest record. Date+sha filenames do not sort
# chronologically (the sha part is arbitrary), so consumers — the CI
# counter check, tools/compare_bench.py invocations — resolve the
# baseline through this file instead of ls|sort.
echo "BENCH_${stamp}_${sha}.json" > "$out_dir/LATEST"

echo "wrote $out_file"

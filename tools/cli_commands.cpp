#include "cli_commands.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "boinc/simulation.h"
#include "core/fit_pipeline.h"
#include "core/host_generator.h"
#include "core/prediction.h"
#include "core/validation.h"
#include "synth/population.h"
#include "trace/csv_io.h"
#include "util/table.h"

namespace resmodel::cli {

namespace {

std::size_t parse_count(const std::string& s, const char* what) {
  std::size_t pos = 0;
  const unsigned long v = std::stoul(s, &pos);
  if (pos != s.size() || v == 0) {
    throw std::invalid_argument(std::string("bad ") + what + ": '" + s + "'");
  }
  return static_cast<std::size_t>(v);
}

core::ModelParams load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return core::ModelParams::deserialize(buffer.str());
}

void save_model(const core::ModelParams& params, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write model file: " + path);
  out << params.serialize();
}

void write_generated_csv(const std::vector<core::GeneratedHost>& hosts,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write hosts file: " + path);
  out << "cores,memory_mb,whetstone_mips,dhrystone_mips,disk_avail_gb\n";
  for (const core::GeneratedHost& h : hosts) {
    out << h.n_cores << ',' << h.memory_mb << ',' << h.whetstone_mips << ','
        << h.dhrystone_mips << ',' << h.disk_avail_gb << '\n';
  }
}

}  // namespace

std::string usage_text() {
  return "resmodel — correlated Internet end-host resource models "
         "(ICDCS'11 reproduction)\n"
         "usage:\n"
         "  resmodel synth    <out.csv> [active] [seed]\n"
         "  resmodel collect  <out.csv> [active] [seed]\n"
         "  resmodel fit      <trace.csv> <model.txt>\n"
         "  resmodel generate <model.txt> <YYYY-MM-DD> <count> <out.csv>\n"
         "  resmodel predict  <model.txt> <year>\n"
         "  resmodel validate <model.txt> <trace.csv> <YYYY-MM-DD>\n";
}

int cmd_synth(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  if (args.empty() || args.size() > 3) {
    err << "synth: expected <out.csv> [active] [seed]\n";
    return kUsage;
  }
  synth::PopulationConfig config;
  config.target_active_hosts = 4000;
  if (args.size() > 1) config.target_active_hosts = parse_count(args[1], "active");
  if (args.size() > 2) config.seed = parse_count(args[2], "seed");
  const trace::TraceStore store = synth::generate_population(config);
  trace::write_csv_file(store, args[0]);
  out << "wrote " << store.size() << " host records to " << args[0] << '\n';
  return kOk;
}

int cmd_collect(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty() || args.size() > 3) {
    err << "collect: expected <out.csv> [active] [seed]\n";
    return kUsage;
  }
  boinc::CollectionConfig config;
  config.population.target_active_hosts = 1000;
  if (args.size() > 1) {
    config.population.target_active_hosts = parse_count(args[1], "active");
  }
  if (args.size() > 2) config.population.seed = parse_count(args[2], "seed");
  const boinc::CollectionResult result = boinc::run_collection(config);
  trace::write_csv_file(result.trace, args[0]);
  out << "collected " << result.trace.size() << " host records over "
      << result.total_contacts << " scheduler contacts; wrote " << args[0]
      << '\n';
  return kOk;
}

int cmd_fit(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.size() != 2) {
    err << "fit: expected <trace.csv> <model.txt>\n";
    return kUsage;
  }
  const trace::TraceStore store = trace::read_csv_file(args[0]);
  const core::FitReport report = core::fit_model(store);
  save_model(report.params, args[1]);
  out << "fitted " << report.fitted_hosts << " hosts ("
      << report.discarded_hosts << " discarded by the plausibility rules)\n"
      << "1:2 core ratio law: a = " << report.core_ratios[0].law.a
      << ", b = " << report.core_ratios[0].law.b << '\n'
      << "model written to " << args[1] << '\n';
  return kOk;
}

int cmd_generate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  if (args.size() != 4) {
    err << "generate: expected <model.txt> <YYYY-MM-DD> <count> <out.csv>\n";
    return kUsage;
  }
  const core::ModelParams params = load_model(args[0]);
  const util::ModelDate date = util::ModelDate::parse(args[1]);
  const std::size_t count = parse_count(args[2], "count");
  const core::HostGenerator generator(params);
  util::Rng rng(0x7e57ab1e);
  const auto hosts = generator.generate_many(date, count, rng);
  write_generated_csv(hosts, args[3]);
  out << "generated " << hosts.size() << " hosts for " << date.to_string()
      << " -> " << args[3] << '\n';
  return kOk;
}

int cmd_predict(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.size() != 2) {
    err << "predict: expected <model.txt> <year>\n";
    return kUsage;
  }
  const core::ModelParams params = load_model(args[0]);
  const double year = std::stod(args[1]);
  const double t = year - 2006.0;

  util::Table table({"Quantity", "Prediction"});
  table.add_row({"Mean cores",
                 util::Table::num(core::predicted_mean_cores(params, t), 2)});
  table.add_row(
      {"Mean memory (GB)",
       util::Table::num(core::predicted_mean_memory_mb(params, t) / 1024.0,
                        2)});
  const auto dhry = core::predicted_dhrystone(params, t);
  const auto whet = core::predicted_whetstone(params, t);
  const auto disk = core::predicted_disk_gb(params, t);
  table.add_row({"Dhrystone MIPS (mean ± sd)",
                 util::Table::num(dhry.mean, 0) + " ± " +
                     util::Table::num(dhry.stddev, 0)});
  table.add_row({"Whetstone MIPS (mean ± sd)",
                 util::Table::num(whet.mean, 0) + " ± " +
                     util::Table::num(whet.stddev, 0)});
  table.add_row({"Avail disk GB (mean ± sd)",
                 util::Table::num(disk.mean, 1) + " ± " +
                     util::Table::num(disk.stddev, 1)});
  const auto fractions = core::predicted_core_fractions(params, {t});
  for (std::size_t v = 0; v < params.cores.values.size(); ++v) {
    table.add_row(
        {std::to_string(static_cast<int>(params.cores.values[v])) +
             "-core share",
         util::Table::pct(fractions[v][0])});
  }
  out << "Predicted composition for " << year << ":\n";
  table.print(out);
  return kOk;
}

int cmd_validate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  if (args.size() != 3) {
    err << "validate: expected <model.txt> <trace.csv> <YYYY-MM-DD>\n";
    return kUsage;
  }
  const core::ModelParams params = load_model(args[0]);
  trace::TraceStore store = trace::read_csv_file(args[1]);
  store.discard_implausible();
  const util::ModelDate date = util::ModelDate::parse(args[2]);
  const trace::ResourceSnapshot actual = store.snapshot(date);
  if (actual.size() == 0) {
    err << "validate: no active hosts at " << date.to_string() << '\n';
    return kFailure;
  }
  const core::HostGenerator generator(params);
  util::Rng rng(1);
  const auto generated = generator.generate_many(date, actual.size(), rng);
  util::Table table(
      {"Resource", "mu actual", "mu gen", "mu diff", "sd diff", "KS"});
  for (const core::ResourceComparison& c :
       core::compare_resources(actual, generated)) {
    table.add_row({c.name, util::Table::num(c.mean_actual, 1),
                   util::Table::num(c.mean_generated, 1),
                   util::Table::pct(c.mean_diff_fraction),
                   util::Table::pct(c.stddev_diff_fraction),
                   util::Table::num(c.ks_statistic, 3)});
  }
  out << "Generated-vs-actual at " << date.to_string() << " ("
      << actual.size() << " hosts):\n";
  table.print(out);
  return kOk;
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << usage_text();
    return kUsage;
  }
  const std::string& command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "synth") return cmd_synth(rest, out, err);
    if (command == "collect") return cmd_collect(rest, out, err);
    if (command == "fit") return cmd_fit(rest, out, err);
    if (command == "generate") return cmd_generate(rest, out, err);
    if (command == "predict") return cmd_predict(rest, out, err);
    if (command == "validate") return cmd_validate(rest, out, err);
  } catch (const std::exception& e) {
    err << command << ": " << e.what() << '\n';
    return kFailure;
  }
  err << "unknown command '" << command << "'\n" << usage_text();
  return kUsage;
}

}  // namespace resmodel::cli

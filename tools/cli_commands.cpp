#include "cli_commands.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include <algorithm>
#include <cstdio>

#include "backend/backend.h"
#include "boinc/simulation.h"
#include "churn/block_envelope.h"
#include "core/fit_pipeline.h"
#include "core/host_generator.h"
#include "core/prediction.h"
#include "core/validation.h"
#include "engine/checkpoint.h"
#include "engine/service_engine.h"
#include "model/factory.h"
#include "sim/bag_of_tasks.h"
#include "sim/baseline_models.h"
#include "store/adapters.h"
#include "store/snapshot.h"
#include "synth/population.h"
#include "trace/csv_io.h"
#include "util/checksum.h"
#include "util/csv.h"
#include "util/table.h"

namespace resmodel::cli {

namespace {

std::size_t parse_count(const std::string& s, const char* what) {
  // Digits-only: std::stoul would wrap a negative string ("-3") around to
  // a huge accepted value instead of rejecting it.
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(std::string("bad ") + what + ": '" + s + "'");
  }
  const unsigned long long v = std::stoull(s);
  if (v == 0) {
    throw std::invalid_argument(std::string("bad ") + what + ": '" + s +
                                "' (expected a positive count)");
  }
  return static_cast<std::size_t>(v);
}

/// Digits-only u64 (0 allowed, unlike parse_count).
std::uint64_t parse_u64(const std::string& value, const char* what) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(std::string("bad ") + what + ": '" + value +
                                "'");
  }
  return std::stoull(value);
}

/// Flags shared by the host-synthesis commands. Everything that is not a
/// recognized --flag stays positional.
struct SynthesisOptions {
  model::CorrelationKind correlation = model::CorrelationKind::kCholesky;
  std::string fit_trace_path;  ///< --trace=, only used by --correlation=empirical
  std::vector<std::string> positional;
};

SynthesisOptions parse_synthesis_options(
    const std::vector<std::string>& args) {
  SynthesisOptions opts;
  for (const std::string& arg : args) {
    if (arg.starts_with("--correlation=")) {
      const std::string value = arg.substr(14);
      const auto kind = model::parse_correlation_kind(value);
      if (!kind) {
        throw std::invalid_argument(
            "bad --correlation: '" + value + "' (expected " +
            model::correlation_kind_names() + ")");
      }
      opts.correlation = *kind;
    } else if (arg.starts_with("--trace=")) {
      opts.fit_trace_path = arg.substr(8);
    } else if (arg.starts_with("--")) {
      throw std::invalid_argument("unknown flag: '" + arg + "'");
    } else {
      opts.positional.push_back(arg);
    }
  }
  return opts;
}

/// Builds the generator for the chosen dependence structure. The empirical
/// model is fitted from `fit_trace` (already plausibility-filtered) over
/// snapshots spanning the trace's own window, so generating for dates
/// outside the trace — the extrapolation case — works.
core::HostGenerator make_generator(const core::ModelParams& params,
                                   const SynthesisOptions& opts,
                                   const trace::TraceStore* fit_trace) {
  return core::HostGenerator(
      params, model::make_correlation_model(opts.correlation,
                                            params.resource_correlation,
                                            fit_trace));
}

core::ModelParams load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return core::ModelParams::deserialize(buffer.str());
}

void save_model(const core::ModelParams& params, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write model file: " + path);
  out << params.serialize();
}

void write_generated_csv(const core::GeneratedHostBatch& hosts,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write hosts file: " + path);
  out << "cores,memory_mb,whetstone_mips,dhrystone_mips,disk_avail_gb\n";
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    out << hosts.n_cores[i] << ',' << hosts.memory_mb[i] << ','
        << hosts.whetstone_mips[i] << ',' << hosts.dhrystone_mips[i] << ','
        << hosts.disk_avail_gb[i] << '\n';
  }
}

}  // namespace

std::string usage_text() {
  return "resmodel — correlated Internet end-host resource models "
         "(ICDCS'11 reproduction)\n"
         "usage:\n"
         "  resmodel synth    <out.csv> [active] [seed]\n"
         "  resmodel collect  <out.csv> [active] [seed]\n"
         "  resmodel fit      <trace.csv> <model.txt>\n"
         "  resmodel generate <model.txt> <YYYY-MM-DD> <count> <out.csv>\n"
         "                    [--correlation=cholesky|independent|empirical]\n"
         "                    [--trace=<trace.csv>]   (fit data for empirical)\n"
         "  resmodel predict  <model.txt> <year>\n"
         "  resmodel validate <model.txt> <trace.csv> <YYYY-MM-DD>\n"
         "                    [--correlation=cholesky|independent|empirical]\n"
         "                    [--trace=<fit.csv>]  (empirical fit source;\n"
         "                     defaults to the trace being validated)\n"
         "  resmodel sweep    <model.txt> <YYYY-MM-DD> <hosts> "
         "[tasks[,tasks...]]\n"
         "                    [--policies=rr,sw,pull,ect] [--threads=N]\n"
         "                    [--seed=N] [--availability] [--churn]\n"
         "                    [--interrupt=checkpoint,restart,abandon]\n"
         "                    [--churn-levels=N]   (churn ECT lookahead\n"
         "                     depth, 1.." +
         std::to_string(churn::kMaxLookaheadLevels) +
         "; implies --churn)\n"
         "                    [--avail-coupling=rho]   (rank-couples\n"
         "                     availability to host speed, rho in [-1,1])\n"
         "                    [--backend=" +
         backend::backend_names() +
         "]   (kernel arm for\n"
         "                     the dynamic policies; results are\n"
         "                     bit-identical across arms)\n"
         "                    [--replication=k/n]   (issue n replicas per\n"
         "                     task, validate on a k-of-n digest quorum)\n"
         "                    [--deadline-days=D] [--backoff=B] "
         "[--retries=N]\n"
         "                     (re-issue rounds: round r's window is\n"
         "                     D*B^r days, at most N re-issues)\n"
         "                    [--fault-mix=crash:p,straggler:p,corrupt:p]\n"
         "                     (per-host fault injection fractions)\n"
         "  resmodel serve    --clients=N --days=D [--shards=S]\n"
         "                    [--threads=T] [--seed=N] [--batch=N]\n"
         "                    [--mean-contact-days=D] [--availability]\n"
         "                    [--fault-mix=crash:p,straggler:p,corrupt:p]\n"
         "                    [--replication=k/n] [--deadline-days=D]\n"
         "                    (sharded virtual-time service engine over an\n"
         "                     N-client cohort; counters are deterministic\n"
         "                     and shard/thread-invariant — only the final\n"
         "                     'timing:' line varies between runs)\n"
         "                    [--checkpoint=PATH] "
         "[--checkpoint-every-days=D]\n"
         "                     (atomically publish the complete resumable\n"
         "                     engine state every D virtual days)\n"
         "                    [--stop-after-day=N]   (halt cleanly after\n"
         "                     day N's barrier — deterministic kill)\n"
         "                    [--checkpoint-fault="
         "enospc|eio|crash-byte|crash-commit[:BYTE]@EPOCH]\n"
         "                     (inject a store fault into the EPOCH'th\n"
         "                     checkpoint write; the previous published\n"
         "                     checkpoint survives untouched)\n"
         "  resmodel serve    --resume=PATH [--threads=T]\n"
         "                    [--checkpoint=PATH] [...]\n"
         "                    (continue a checkpointed run bit-identically\n"
         "                     to one never interrupted; population-shape\n"
         "                     flags conflict — config comes from the\n"
         "                     checkpoint's run header)\n"
         "  resmodel backends    print CPU SIMD features and what each\n"
         "                       requested backend resolves to\n"
         "  resmodel pack     <in.csv> <out.snap> [--shard=N]\n"
         "                    (trace or population csv, auto-detected, ->\n"
         "                     checksummed columnar snapshot)\n"
         "  resmodel pack     --generate <model.txt> <YYYY-MM-DD> <count>\n"
         "                    <out.snap> [--shard=N] [--seed=N]\n"
         "                    (synthesize straight to a sharded snapshot;\n"
         "                     bounded memory at any count)\n"
         "  resmodel unpack   <in.snap> [out.csv] [--digest-only] "
         "[--recover]\n"
         "                    (--digest-only: checksum walk + digest lines\n"
         "                     only; --recover: load what is intact,\n"
         "                     zero-fill and itemize damaged blocks)\n"
         "  resmodel verify   <in.snap> [--digests]\n"
         "                    (exit 0 = every block intact; damage is\n"
         "                     listed block by block)\n";
}

int cmd_backends(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  if (!args.empty()) {
    err << "backends: expected no arguments\n";
    return kUsage;
  }
  // cpu_feature_string reflects effective_cpu(), i.e. detection AFTER the
  // RESMODEL_SIMD cap — what dispatch actually sees, not raw CPUID.
  out << "cpu features: " << backend::cpu_feature_string()
      << " (RESMODEL_SIMD=off|avx2|avx512|native caps detection)\n";
  util::Table table({"Requested", "Resolves to"});
  for (const backend::Backend b :
       {backend::Backend::kAuto, backend::Backend::kScalar,
        backend::Backend::kBlocked, backend::Backend::kSimd}) {
    const backend::ResolvedBackend rb = backend::resolve(b);
    std::string resolved = backend::to_string(rb.arm);
    if (rb.arm == backend::Backend::kSimd) {
      resolved += " (" + backend::to_string(rb.simd) + ")";
    }
    table.add_row({backend::to_string(b), std::move(resolved)});
  }
  table.print(out);
  return kOk;
}

int cmd_synth(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  if (args.empty() || args.size() > 3) {
    err << "synth: expected <out.csv> [active] [seed]\n";
    return kUsage;
  }
  synth::PopulationConfig config;
  config.target_active_hosts = 4000;
  if (args.size() > 1) config.target_active_hosts = parse_count(args[1], "active");
  if (args.size() > 2) config.seed = parse_count(args[2], "seed");
  const trace::TraceStore store = synth::generate_population(config);
  trace::write_csv_file(store, args[0]);
  out << "wrote " << store.size() << " host records to " << args[0] << '\n';
  return kOk;
}

int cmd_collect(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.empty() || args.size() > 3) {
    err << "collect: expected <out.csv> [active] [seed]\n";
    return kUsage;
  }
  boinc::CollectionConfig config;
  config.population.target_active_hosts = 1000;
  if (args.size() > 1) {
    config.population.target_active_hosts = parse_count(args[1], "active");
  }
  if (args.size() > 2) config.population.seed = parse_count(args[2], "seed");
  config.allocate_final_utility = true;
  const boinc::CollectionResult result = boinc::run_collection(config);
  trace::write_csv_file(result.trace, args[0]);
  out << "collected " << result.trace.size() << " host records over "
      << result.total_contacts << " scheduler contacts; wrote " << args[0]
      << '\n';
  const auto apps = sim::paper_applications();
  if (result.final_allocation_hosts > 0) {
    out << "final-day utility allocation over "
        << result.final_allocation_hosts << " hosts:";
    for (std::size_t a = 0; a < apps.size(); ++a) {
      out << ' ' << apps[a].name << '='
          << result.final_allocation.hosts_assigned[a];
    }
    out << '\n';
  }
  return kOk;
}

int cmd_fit(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.size() != 2) {
    err << "fit: expected <trace.csv> <model.txt>\n";
    return kUsage;
  }
  const trace::TraceStore store = trace::read_csv_file(args[0]);
  const core::FitReport report = core::fit_model(store);
  save_model(report.params, args[1]);
  out << "fitted " << report.fitted_hosts << " hosts ("
      << report.discarded_hosts << " discarded by the plausibility rules)\n"
      << "1:2 core ratio law: a = " << report.core_ratios[0].law.a
      << ", b = " << report.core_ratios[0].law.b << '\n'
      << "model written to " << args[1] << '\n';
  return kOk;
}

int cmd_generate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  const SynthesisOptions opts = parse_synthesis_options(args);
  if (opts.positional.size() != 4) {
    err << "generate: expected <model.txt> <YYYY-MM-DD> <count> <out.csv> "
           "[--correlation=" << model::correlation_kind_names()
        << "] [--trace=<trace.csv>]\n";
    return kUsage;
  }
  const core::ModelParams params = load_model(opts.positional[0]);
  const util::ModelDate date = util::ModelDate::parse(opts.positional[1]);
  const std::size_t count = parse_count(opts.positional[2], "count");

  trace::TraceStore fit_trace;
  const trace::TraceStore* fit_ptr = nullptr;
  if (opts.correlation == model::CorrelationKind::kEmpirical) {
    if (opts.fit_trace_path.empty()) {
      err << "generate: --correlation=empirical needs --trace=<trace.csv> "
             "to fit from\n";
      return kUsage;
    }
    fit_trace = trace::read_csv_file(opts.fit_trace_path);
    fit_trace.discard_implausible();
    fit_ptr = &fit_trace;
  } else if (!opts.fit_trace_path.empty()) {
    err << "generate: --trace only applies to --correlation=empirical\n";
    return kUsage;
  }
  const core::HostGenerator generator =
      make_generator(params, opts, fit_ptr);
  util::Rng rng(0x7e57ab1e);
  const core::GeneratedHostBatch hosts =
      generator.generate_batch(date, count, rng);
  write_generated_csv(hosts, opts.positional[3]);
  out << "generated " << hosts.size() << " hosts ("
      << generator.correlation().name() << " correlation) for "
      << date.to_string() << " -> " << opts.positional[3] << '\n';
  return kOk;
}

int cmd_predict(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.size() != 2) {
    err << "predict: expected <model.txt> <year>\n";
    return kUsage;
  }
  const core::ModelParams params = load_model(args[0]);
  const double year = std::stod(args[1]);
  const double t = year - 2006.0;

  util::Table table({"Quantity", "Prediction"});
  table.add_row({"Mean cores",
                 util::Table::num(core::predicted_mean_cores(params, t), 2)});
  table.add_row(
      {"Mean memory (GB)",
       util::Table::num(core::predicted_mean_memory_mb(params, t) / 1024.0,
                        2)});
  const auto dhry = core::predicted_dhrystone(params, t);
  const auto whet = core::predicted_whetstone(params, t);
  const auto disk = core::predicted_disk_gb(params, t);
  table.add_row({"Dhrystone MIPS (mean ± sd)",
                 util::Table::num(dhry.mean, 0) + " ± " +
                     util::Table::num(dhry.stddev, 0)});
  table.add_row({"Whetstone MIPS (mean ± sd)",
                 util::Table::num(whet.mean, 0) + " ± " +
                     util::Table::num(whet.stddev, 0)});
  table.add_row({"Avail disk GB (mean ± sd)",
                 util::Table::num(disk.mean, 1) + " ± " +
                     util::Table::num(disk.stddev, 1)});
  const auto fractions = core::predicted_core_fractions(params, {t});
  for (std::size_t v = 0; v < params.cores.values.size(); ++v) {
    table.add_row(
        {std::to_string(static_cast<int>(params.cores.values[v])) +
             "-core share",
         util::Table::pct(fractions[v][0])});
  }
  out << "Predicted composition for " << year << ":\n";
  table.print(out);
  return kOk;
}

int cmd_validate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  const SynthesisOptions opts = parse_synthesis_options(args);
  if (opts.positional.size() != 3) {
    err << "validate: expected <model.txt> <trace.csv> <YYYY-MM-DD> "
           "[--correlation=" << model::correlation_kind_names() << "]\n";
    return kUsage;
  }
  const core::ModelParams params = load_model(opts.positional[0]);
  trace::TraceStore store = trace::read_csv_file(opts.positional[1]);
  store.discard_implausible();
  const util::ModelDate date = util::ModelDate::parse(opts.positional[2]);
  const trace::ResourceSnapshot actual = store.snapshot(date);
  if (actual.size() == 0) {
    err << "validate: no active hosts at " << date.to_string() << '\n';
    return kFailure;
  }
  // The empirical copula refits from the trace being validated unless an
  // explicit --trace= gives a separate (out-of-sample) fit source.
  trace::TraceStore separate_fit;
  const trace::TraceStore* fit_ptr = &store;
  if (!opts.fit_trace_path.empty()) {
    if (opts.correlation != model::CorrelationKind::kEmpirical) {
      err << "validate: --trace only applies to --correlation=empirical\n";
      return kUsage;
    }
    separate_fit = trace::read_csv_file(opts.fit_trace_path);
    separate_fit.discard_implausible();
    fit_ptr = &separate_fit;
  }
  const core::HostGenerator generator =
      make_generator(params, opts, fit_ptr);
  util::Rng rng(1);
  const core::GeneratedHostBatch generated =
      generator.generate_batch(date, actual.size(), rng);
  util::Table table(
      {"Resource", "mu actual", "mu gen", "mu diff", "sd diff", "KS"});
  for (const core::ResourceComparison& c :
       core::compare_resources(actual, generated)) {
    table.add_row({c.name, util::Table::num(c.mean_actual, 1),
                   util::Table::num(c.mean_generated, 1),
                   util::Table::pct(c.mean_diff_fraction),
                   util::Table::pct(c.stddev_diff_fraction),
                   util::Table::num(c.ks_statistic, 3)});
  }
  out << "Generated-vs-actual at " << date.to_string() << " ("
      << actual.size() << " hosts):\n";
  table.print(out);
  return kOk;
}

namespace {

/// "rr,sw,pull,ect" -> policy list (order preserved, duplicates allowed).
std::vector<sim::SchedulingPolicy> parse_policies(const std::string& spec) {
  std::vector<sim::SchedulingPolicy> policies;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == "rr") {
      policies.push_back(sim::SchedulingPolicy::kStaticRoundRobin);
    } else if (token == "sw") {
      policies.push_back(sim::SchedulingPolicy::kStaticSpeedWeighted);
    } else if (token == "pull") {
      policies.push_back(sim::SchedulingPolicy::kDynamicPull);
    } else if (token == "ect") {
      policies.push_back(sim::SchedulingPolicy::kDynamicEct);
    } else {
      throw std::invalid_argument("bad policy '" + token +
                                  "' (expected rr|sw|pull|ect)");
    }
  }
  if (policies.empty()) {
    throw std::invalid_argument("empty --policies list");
  }
  return policies;
}

std::vector<std::size_t> parse_task_counts(const std::string& spec) {
  std::vector<std::size_t> counts;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    counts.push_back(parse_count(token, "task count"));
  }
  if (counts.empty()) {
    throw std::invalid_argument("empty task-count list");
  }
  return counts;
}

/// "checkpoint,restart,abandon" -> churn policy list (order preserved).
std::vector<sim::SchedulingPolicy> parse_interruptions(
    const std::string& spec) {
  std::vector<sim::SchedulingPolicy> policies;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == "checkpoint") {
      policies.push_back(sim::SchedulingPolicy::kChurnEctCheckpoint);
    } else if (token == "restart") {
      policies.push_back(sim::SchedulingPolicy::kChurnEctRestart);
    } else if (token == "abandon") {
      policies.push_back(sim::SchedulingPolicy::kChurnEctAbandon);
    } else {
      throw std::invalid_argument(
          "bad interruption policy '" + token +
          "' (expected checkpoint|restart|abandon)");
    }
  }
  if (policies.empty()) {
    throw std::invalid_argument("empty --interrupt list");
  }
  return policies;
}

double parse_rho(const std::string& value) {
  std::size_t pos = 0;
  const double rho = std::stod(value, &pos);
  if (pos != value.size() || !(rho >= -1.0 && rho <= 1.0)) {
    throw std::invalid_argument("bad --avail-coupling: '" + value +
                                "' (expected rho in [-1, 1])");
  }
  return rho;
}

double parse_positive_double(const std::string& value, const char* what) {
  std::size_t pos = 0;
  const double v = std::stod(value, &pos);
  if (pos != value.size() || !(v > 0.0)) {
    throw std::invalid_argument(std::string("bad ") + what + ": '" + value +
                                "' (expected a positive number)");
  }
  return v;
}

/// "k/n" -> quorum k of n replicas (e.g. --replication=2/3).
void parse_replication(const std::string& spec, sim::ReplicationConfig& rep) {
  const std::size_t slash = spec.find('/');
  if (slash == std::string::npos) {
    throw std::invalid_argument("bad --replication: '" + spec +
                                "' (expected k/n, e.g. 2/3)");
  }
  rep.quorum = static_cast<std::uint32_t>(
      parse_count(spec.substr(0, slash), "replication quorum"));
  rep.replicas = static_cast<std::uint32_t>(
      parse_count(spec.substr(slash + 1), "replication count"));
  rep.enabled = true;
}

/// "crash:0.05,straggler:0.03,corrupt:0.02" — any subset, any order.
sim::FaultMixConfig parse_fault_mix(const std::string& spec) {
  sim::FaultMixConfig mix;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument(
          "bad --fault-mix entry '" + token +
          "' (expected kind:fraction, kind in crash|straggler|corrupt)");
    }
    const std::string kind = token.substr(0, colon);
    const double fraction =
        parse_positive_double(token.substr(colon + 1), "fault fraction");
    if (kind == "crash") {
      mix.crash_fraction = fraction;
    } else if (kind == "straggler") {
      mix.straggler_fraction = fraction;
    } else if (kind == "corrupt") {
      mix.corrupter_fraction = fraction;
    } else {
      throw std::invalid_argument("bad --fault-mix kind '" + kind +
                                  "' (expected crash|straggler|corrupt)");
    }
  }
  mix.validate();
  return mix;
}

}  // namespace

int cmd_sweep(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  sim::PolicySweepConfig sweep;
  sweep.policies = {
      sim::SchedulingPolicy::kStaticRoundRobin,
      sim::SchedulingPolicy::kStaticSpeedWeighted,
      sim::SchedulingPolicy::kDynamicPull,
      sim::SchedulingPolicy::kDynamicEct,
  };
  sweep.task_counts = {10000};
  bool churn = false;
  bool policies_explicit = false;
  // Default churn policy set when --churn is given without --interrupt.
  std::vector<sim::SchedulingPolicy> churn_policies = {
      sim::SchedulingPolicy::kChurnEctCheckpoint,
      sim::SchedulingPolicy::kChurnEctRestart,
      sim::SchedulingPolicy::kChurnEctAbandon,
  };
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    if (arg.starts_with("--policies=")) {
      sweep.policies = parse_policies(arg.substr(11));
      policies_explicit = true;
    } else if (arg.starts_with("--replication=")) {
      parse_replication(arg.substr(14), sweep.base.replication);
    } else if (arg.starts_with("--deadline-days=")) {
      sweep.base.replication.deadline_days =
          parse_positive_double(arg.substr(16), "--deadline-days");
      sweep.base.replication.enabled = true;
    } else if (arg.starts_with("--backoff=")) {
      sweep.base.replication.backoff =
          parse_positive_double(arg.substr(10), "--backoff");
      sweep.base.replication.enabled = true;
    } else if (arg.starts_with("--retries=")) {
      // 0 is legitimate (no re-issue), so parse digits directly.
      const std::string value = arg.substr(10);
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad --retries: '" + value + "'");
      }
      sweep.base.replication.max_retries =
          static_cast<std::uint32_t>(std::stoul(value));
      sweep.base.replication.enabled = true;
    } else if (arg.starts_with("--fault-mix=")) {
      sweep.base.fault_mix = parse_fault_mix(arg.substr(12));
    } else if (arg.starts_with("--threads=")) {
      sweep.threads = static_cast<int>(parse_count(arg.substr(10), "threads"));
    } else if (arg.starts_with("--seed=")) {
      // Unlike the count arguments, 0 is a legitimate seed — but stoull
      // alone would also wrap negatives, so digits only.
      const std::string value = arg.substr(7);
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad seed: '" + value + "'");
      }
      sweep.workload_seed = std::stoull(value);
    } else if (arg == "--availability") {
      sweep.base.model_availability = true;
    } else if (arg == "--churn") {
      churn = true;
    } else if (arg.starts_with("--interrupt=")) {
      churn_policies = parse_interruptions(arg.substr(12));
      churn = true;  // naming interruption policies implies --churn
    } else if (arg.starts_with("--churn-levels=")) {
      const std::size_t levels = parse_count(arg.substr(15), "churn levels");
      if (levels > churn::kMaxLookaheadLevels) {
        throw std::invalid_argument(
            "bad --churn-levels: '" + arg.substr(15) + "' (expected 1.." +
            std::to_string(churn::kMaxLookaheadLevels) + ")");
      }
      sweep.base.churn_lookahead_levels = levels;
      churn = true;  // a churn kernel knob implies --churn
    } else if (arg.starts_with("--avail-coupling=")) {
      sweep.base.availability_coupled = true;
      sweep.base.availability_coupling.speed_rho = parse_rho(arg.substr(17));
    } else if (arg.starts_with("--backend=")) {
      const std::string value = arg.substr(10);
      const auto backend = backend::parse_backend(value);
      if (!backend) {
        throw std::invalid_argument("bad --backend: '" + value +
                                    "' (expected " +
                                    backend::backend_names() + ")");
      }
      sweep.base.backend = *backend;
    } else if (arg.starts_with("--")) {
      err << "sweep: unknown flag: '" << arg << "'\n";
      return kUsage;
    } else {
      positional.push_back(arg);
    }
  }
  const bool replicated = sweep.base.replicated_run();
  if (replicated && !policies_explicit) {
    // Replication only composes with the dynamic-ECT family (static and
    // pull hand out work once and never watch deadlines); narrow the
    // default grid rather than erroring out of the default.
    sweep.policies = {sim::SchedulingPolicy::kDynamicEct};
  }
  if (churn) {
    sweep.policies.insert(sweep.policies.end(), churn_policies.begin(),
                          churn_policies.end());
  }
  if (sweep.base.availability_coupled && !sweep.base.model_availability &&
      !churn) {
    // Nothing would consume the coupling: derate is off and no churn
    // policy walks the timeline — refuse rather than print a header
    // claiming a coupled experiment ran.
    err << "sweep: --avail-coupling needs --availability or --churn "
           "(nothing models availability otherwise)\n";
    return kUsage;
  }
  if (positional.size() < 3 || positional.size() > 4) {
    err << "sweep: expected <model.txt> <YYYY-MM-DD> <hosts> "
           "[tasks[,tasks...]] [--policies=rr,sw,pull,ect] [--threads=N] "
           "[--seed=N] [--availability] [--churn] "
           "[--interrupt=checkpoint,restart,abandon] [--churn-levels=N] "
           "[--avail-coupling=rho] [--backend=" +
               backend::backend_names() +
           "] [--replication=k/n] [--deadline-days=D] [--backoff=B] "
           "[--retries=N] [--fault-mix=crash:p,straggler:p,corrupt:p]\n";
    return kUsage;
  }
  const core::ModelParams params = load_model(positional[0]);
  const util::ModelDate date = util::ModelDate::parse(positional[1]);
  const std::size_t host_count = parse_count(positional[2], "hosts");
  if (positional.size() > 3) {
    sweep.task_counts = parse_task_counts(positional[3]);
  }

  // The host-model axis: the published Cholesky dependence structure vs
  // the same marginal laws sampled independently — the paper's argument
  // that scheduling conclusions hinge on the joint model, as a grid.
  const sim::CorrelatedModel correlated(params);
  const sim::CorrelatedModel independent(
      params,
      model::make_correlation_model(model::CorrelationKind::kIndependent,
                                    params.resource_correlation),
      "Independent Model");
  util::Rng synth_rng(0x5eed5eed);
  std::vector<sim::SweepPopulation> populations;
  populations.push_back(
      {"Correlated", correlated.synthesize_soa(date, host_count, synth_rng)});
  populations.push_back(
      {"Independent", independent.synthesize_soa(date, host_count, synth_rng)});

  const sim::PolicySweepResult grid = sim::run_policy_sweep(populations, sweep);

  out << "Policy sweep over " << host_count << " hosts at " << date.to_string()
      << (sweep.base.model_availability ? " (availability-derated)" : "")
      << (sweep.base.availability_coupled
              ? " (speed-coupled availability, rho=" +
                    util::Table::num(
                        sweep.base.availability_coupling.speed_rho, 2) +
                    ")"
              : "")
      << ", makespan in days:\n";
  double wasted_cpu = 0.0;
  std::uint64_t interruptions = 0;
  for (std::size_t t = 0; t < sweep.task_counts.size(); ++t) {
    std::vector<std::string> header = {
        std::to_string(sweep.task_counts[t]) + " tasks"};
    for (const sim::SchedulingPolicy policy : sweep.policies) {
      header.push_back(to_string(policy));
    }
    util::Table table(std::move(header));
    for (std::size_t p = 0; p < populations.size(); ++p) {
      std::vector<std::string> cells = {populations[p].name};
      for (std::size_t pol = 0; pol < sweep.policies.size(); ++pol) {
        const sim::BagOfTasksResult& cell = grid.at(p, pol, t).result;
        cells.push_back(util::Table::num(cell.makespan_days, 1));
        wasted_cpu += cell.wasted_cpu_days;
        interruptions += cell.interruptions;
      }
      table.add_row(std::move(cells));
    }
    table.print(out);
  }
  if (churn) {
    out << "churn cells: " << interruptions << " interruptions, "
        << util::Table::num(wasted_cpu, 1) << " CPU-days of burned attempts "
           "across the grid\n";
  }
  if (replicated) {
    const sim::ReplicationConfig& rep = sweep.base.replication;
    out << "replication outcomes (" << rep.quorum << "-of-" << rep.replicas
        << " quorum";
    if (rep.has_deadline()) {
      out << ", deadline " << util::Table::num(rep.deadline_days, 1)
          << "d, backoff x" << util::Table::num(rep.backoff, 1) << ", "
          << rep.max_retries << " retries";
    }
    out << "):\n";
    util::Table table({"Population", "Policy", "Tasks", "Issued", "Valid",
                       "Invalid", "Missed", "Reissues", "Wasted cpu-d",
                       "p50/p90/p99 reissue-d"});
    for (std::size_t p = 0; p < populations.size(); ++p) {
      for (std::size_t pol = 0; pol < sweep.policies.size(); ++pol) {
        for (std::size_t t = 0; t < sweep.task_counts.size(); ++t) {
          const sim::ReplicationOutcome& o =
              grid.at(p, pol, t).result.replication;
          table.add_row(
              {populations[p].name, to_string(sweep.policies[pol]),
               std::to_string(sweep.task_counts[t]),
               std::to_string(o.tasks_issued),
               std::to_string(o.tasks_validated),
               std::to_string(o.tasks_invalid),
               std::to_string(o.tasks_missed_deadline),
               std::to_string(o.reissues),
               util::Table::num(o.wasted_replica_cpu_days, 1),
               util::Table::num(o.reissue_latency_p50_days, 2) + "/" +
                   util::Table::num(o.reissue_latency_p90_days, 2) + "/" +
                   util::Table::num(o.reissue_latency_p99_days, 2)});
        }
      }
    }
    table.print(out);
  }
  return kOk;
}

/// Parses a --checkpoint-fault spec: KIND[:BYTE]@EPOCH with KIND one of
/// enospc | eio | crash-byte | crash-commit. crash-commit is a kCrash
/// plan whose offset is never reached during appends, so the simulated
/// death fires at the rename — after the full tmp file was written,
/// before publication.
store::FaultPlan parse_checkpoint_fault(const std::string& text,
                                        std::uint64_t& epoch) {
  const std::size_t at = text.rfind('@');
  if (at == std::string::npos) {
    throw std::invalid_argument(
        "bad --checkpoint-fault: '" + text +
        "' (expected enospc|eio|crash-byte|crash-commit[:BYTE]@EPOCH)");
  }
  epoch = parse_count(text.substr(at + 1), "--checkpoint-fault epoch");
  std::string kind = text.substr(0, at);
  std::uint64_t at_byte = 65536;
  bool have_byte = false;
  const std::size_t colon = kind.find(':');
  if (colon != std::string::npos) {
    at_byte = parse_u64(kind.substr(colon + 1), "--checkpoint-fault byte");
    have_byte = true;
    kind = kind.substr(0, colon);
  }
  store::FaultPlan plan;
  plan.at_byte = at_byte;
  if (kind == "enospc") {
    plan.kind = store::FaultPlan::Kind::kNoSpace;
  } else if (kind == "eio") {
    plan.kind = store::FaultPlan::Kind::kIoError;
  } else if (kind == "crash-byte") {
    plan.kind = store::FaultPlan::Kind::kCrash;
  } else if (kind == "crash-commit") {
    plan.kind = store::FaultPlan::Kind::kCrash;
    if (!have_byte) plan.at_byte = ~std::uint64_t{0};
  } else {
    throw std::invalid_argument("bad --checkpoint-fault kind: '" + kind +
                                "'");
  }
  return plan;
}

int cmd_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  engine::EngineConfig config;
  config.collection.client.mean_contact_interval_days = 2.0;
  bool have_clients = false;
  bool have_days = false;
  bool have_every = false;
  double deadline_days = 0.0;
  // Flags that shape the run (population, window, behaviour): all of
  // them conflict with --resume, whose configuration comes from the
  // checkpoint's run header.
  std::vector<std::string> shape_flags;

  for (const std::string& arg : args) {
    if (arg.starts_with("--clients=")) {
      config.cohort_clients = parse_count(arg.substr(10), "--clients");
      have_clients = true;
      shape_flags.push_back("--clients");
    } else if (arg.starts_with("--days=")) {
      config.cohort_horizon_days =
          parse_positive_double(arg.substr(7), "--days");
      have_days = true;
      shape_flags.push_back("--days");
    } else if (arg.starts_with("--shards=")) {
      // parse_count: zero and negative shard counts are usage errors.
      config.shards = static_cast<std::uint32_t>(
          std::min<std::size_t>(parse_count(arg.substr(9), "--shards"),
                                0xffffffffu));
      shape_flags.push_back("--shards");
    } else if (arg.starts_with("--threads=")) {
      config.threads =
          static_cast<int>(parse_u64(arg.substr(10), "--threads"));
    } else if (arg.starts_with("--seed=")) {
      config.collection.population.seed = parse_u64(arg.substr(7), "--seed");
      shape_flags.push_back("--seed");
    } else if (arg.starts_with("--batch=")) {
      config.batch_size = static_cast<std::uint32_t>(
          std::min<std::size_t>(parse_count(arg.substr(8), "--batch"),
                                0xffffffffu));
      shape_flags.push_back("--batch");
    } else if (arg.starts_with("--mean-contact-days=")) {
      config.collection.client.mean_contact_interval_days =
          parse_positive_double(arg.substr(20), "--mean-contact-days");
      shape_flags.push_back("--mean-contact-days");
    } else if (arg == "--availability") {
      config.collection.client.model_availability = true;
      shape_flags.push_back("--availability");
    } else if (arg.starts_with("--fault-mix=")) {
      config.collection.fault_mix = parse_fault_mix(arg.substr(12));
      shape_flags.push_back("--fault-mix");
    } else if (arg.starts_with("--replication=")) {
      parse_replication(arg.substr(14), config.replication);
      shape_flags.push_back("--replication");
    } else if (arg.starts_with("--deadline-days=")) {
      deadline_days =
          parse_positive_double(arg.substr(16), "--deadline-days");
      shape_flags.push_back("--deadline-days");
    } else if (arg.starts_with("--checkpoint=")) {
      config.checkpoint_path = arg.substr(13);
      if (config.checkpoint_path.empty()) {
        err << "serve: --checkpoint needs a path\n";
        return kUsage;
      }
    } else if (arg.starts_with("--checkpoint-every-days=")) {
      config.checkpoint_every_days = static_cast<std::uint32_t>(
          std::min<std::size_t>(
              parse_count(arg.substr(24), "--checkpoint-every-days"),
              0xffffffffu));
      have_every = true;
    } else if (arg.starts_with("--resume=")) {
      config.resume_path = arg.substr(9);
      if (config.resume_path.empty()) {
        err << "serve: --resume needs a path\n";
        return kUsage;
      }
    } else if (arg.starts_with("--stop-after-day=")) {
      config.stop_after_day = static_cast<std::int32_t>(
          std::min<std::uint64_t>(
              parse_u64(arg.substr(17), "--stop-after-day"), 0x7fffffffu));
    } else if (arg.starts_with("--checkpoint-fault=")) {
      config.checkpoint_fault = parse_checkpoint_fault(
          arg.substr(19), config.checkpoint_fault_epoch);
    } else {
      err << "serve: unknown argument: '" << arg << "'\n";
      return kUsage;
    }
  }
  const bool resuming = !config.resume_path.empty();
  if (resuming && !shape_flags.empty()) {
    err << "serve: --resume takes the run's configuration from the "
           "checkpoint header; remove";
    for (const std::string& flag : shape_flags) err << ' ' << flag;
    err << '\n';
    return kUsage;
  }
  if (!resuming && (!have_clients || !have_days)) {
    err << "serve: expected --clients=N --days=D [--shards=S] [--threads=T]"
           " [--seed=N] [--batch=N] [--mean-contact-days=D]"
           " [--availability] [--fault-mix=...] [--replication=k/n]"
           " [--deadline-days=D] [--checkpoint=PATH]"
           " [--checkpoint-every-days=D] [--stop-after-day=N]"
           " [--checkpoint-fault=KIND@EPOCH] | --resume=PATH\n";
    return kUsage;
  }
  if (have_every && config.checkpoint_path.empty()) {
    err << "serve: --checkpoint-every-days needs --checkpoint=PATH\n";
    return kUsage;
  }
  if (deadline_days > 0.0) {
    if (!config.replication.enabled) {
      err << "serve: --deadline-days needs --replication=k/n\n";
      return kUsage;
    }
    config.replication.deadline_days = deadline_days;
  }
  // Surface config errors as usage problems before any work happens.
  try {
    config.validate();
    config.collection.fault_mix.validate();
    config.collection.client.validate();
  } catch (const std::invalid_argument& e) {
    err << "serve: " << e.what() << '\n';
    return kUsage;
  }

  // The provenance the deterministic header line prints: the config for
  // a fresh run, the checkpoint's run header for a resumed one (so both
  // print byte-identical blocks — the CI kill-and-resume gate diffs
  // them).
  double display_days = config.cohort_horizon_days;
  std::uint32_t display_shards = config.shards;
  bool with_replication = config.replication.enabled;
  if (resuming) {
    const engine::CheckpointMeta meta =
        engine::read_checkpoint_meta(config.resume_path);
    display_days = meta.cohort_horizon_days;
    display_shards = meta.display_shards;
    with_replication = meta.replication.enabled;
  }

  const engine::EngineResult result = engine::run_service_engine(config);

  if (result.halted) {
    // The deterministic stand-in for a mid-run kill: report where the
    // run stopped and what survives, nothing else — partial counters
    // are noise the resume leg will finish properly.
    out << "halted: after day " << config.stop_after_day << ", "
        << result.checkpoints_written << " checkpoint(s) written\n";
    return kOk;
  }

  // Everything except the final "timing:" line is deterministic for a
  // fixed config — CI diffs runs after stripping that one line.
  out << "serve: " << result.hosts_created << " clients, "
      << util::Table::num(display_days, 1) << " virtual days, "
      << display_shards << " shard(s)\n";
  out << "contacts: " << result.total_contacts << '\n';
  out << "units: granted=" << result.total_units_granted
      << " reported=" << result.total_units_reported
      << " invalid=" << result.total_invalid_result_units
      << " lost=" << result.total_units_lost
      << " expired=" << result.total_units_expired
      << " in_flight=" << result.units_in_flight
      << " unaccounted=" << result.units_unaccounted() << '\n';
  out << "credit: " << util::Table::num(result.total_credit_granted, 1)
      << '\n';
  if (with_replication) {
    const engine::QuorumOutcome& q = result.quorum;
    out << "quorum tasks: issued=" << q.tasks_issued
        << " validated=" << q.tasks_validated
        << " invalid=" << q.tasks_invalid
        << " missed=" << q.tasks_missed_deadline
        << " pending=" << q.tasks_pending << '\n';
    out << "quorum replicas: issued=" << q.replicas_issued
        << " correct=" << q.replicas_correct
        << " corrupt=" << q.replicas_corrupt
        << " crashed=" << q.replicas_crashed
        << " missed=" << q.replicas_missed_deadline
        << " duplicate=" << q.replicas_duplicate_host
        << " in_flight=" << q.replicas_in_flight << '\n';
    if (!q.conserves_tasks() || !q.conserves_replicas()) {
      err << "serve: quorum accounting does not balance\n";
      return kFailure;
    }
  }
  if (!result.conserves_units()) {
    err << "serve: unit accounting does not balance\n";
    return kFailure;
  }
  // Batch count rides with timing: it depends on the shard split, not on
  // the simulated outcome, so it stays out of the deterministic block.
  out << "timing: " << util::Table::num(result.wall_seconds, 3) << " s, "
      << util::Table::num(result.requests_per_second, 0) << " requests/s, "
      << result.batches_drained << " batch(es)\n";
  return kOk;
}

namespace {

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

void print_digests(std::ostream& out,
                   const std::vector<store::ColumnSpec>& schema,
                   const std::vector<std::uint32_t>& digests,
                   const std::vector<bool>* intact = nullptr) {
  out << "column digests:\n";
  for (std::size_t i = 0; i < schema.size(); ++i) {
    out << "  " << schema[i].name << ' ';
    if (intact && !(*intact)[i]) {
      out << "LOST";
    } else {
      out << hex32(digests[i]);
    }
    out << '\n';
  }
}

/// The generated-population CSV round-trip format: all six SoA columns,
/// doubles printed with round-trip precision (unlike the analysis export
/// cmd_generate writes, which drops memory_per_core_mb and uses default
/// precision).
const std::vector<std::string> kPopulationCsvHeader = {
    "cores",          "memory_per_core_mb", "memory_mb",
    "whetstone_mips", "dhrystone_mips",     "disk_avail_gb"};

void write_population_rows(const core::GeneratedHostBatch& batch,
                           util::CsvWriter& writer) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    writer.write_row({
        util::CsvWriter::field(static_cast<long long>(batch.n_cores[i])),
        util::CsvWriter::field(batch.memory_per_core_mb[i]),
        util::CsvWriter::field(batch.memory_mb[i]),
        util::CsvWriter::field(batch.whetstone_mips[i]),
        util::CsvWriter::field(batch.dhrystone_mips[i]),
        util::CsvWriter::field(batch.disk_avail_gb[i]),
    });
  }
}

core::GeneratedHostBatch read_population_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open population csv: " + path);
  util::CsvReader reader(in);
  util::CsvRow row;
  if (!reader.read_row(row) || row != kPopulationCsvHeader) {
    throw std::runtime_error("population csv " + path +
                             ":1: missing or wrong header");
  }
  core::GeneratedHostBatch batch;
  std::size_t line = 1;
  while (reader.read_row(row)) {
    ++line;
    if (row.size() != kPopulationCsvHeader.size()) {
      throw std::runtime_error("population csv " + path + ":" +
                               std::to_string(line) + ": wrong field count");
    }
    const auto bad = [&](const char* what, const std::string& s) {
      return std::runtime_error("population csv " + path + ":" +
                                std::to_string(line) + ": bad " + what +
                                ": '" + s + "'");
    };
    const auto num = [&](const std::string& s, const char* what) {
      char* end = nullptr;
      const double v = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || *end != '\0') throw bad(what, s);
      return v;
    };
    char* end = nullptr;
    const long long cores = std::strtoll(row[0].c_str(), &end, 10);
    if (end == row[0].c_str() || *end != '\0') throw bad("cores", row[0]);
    batch.n_cores.push_back(static_cast<int>(cores));
    batch.memory_per_core_mb.push_back(num(row[1], "memory_per_core_mb"));
    batch.memory_mb.push_back(num(row[2], "memory_mb"));
    batch.whetstone_mips.push_back(num(row[3], "whetstone_mips"));
    batch.dhrystone_mips.push_back(num(row[4], "dhrystone_mips"));
    batch.disk_avail_gb.push_back(num(row[5], "disk_avail_gb"));
  }
  return batch;
}

core::GeneratedHostBatch population_slice(const core::GeneratedHostBatch& b,
                                          std::size_t at, std::size_t len) {
  core::GeneratedHostBatch s;
  const auto cut = [&](auto& dst, const auto& src) {
    dst.assign(src.begin() + static_cast<std::ptrdiff_t>(at),
               src.begin() + static_cast<std::ptrdiff_t>(at + len));
  };
  cut(s.n_cores, b.n_cores);
  cut(s.memory_per_core_mb, b.memory_per_core_mb);
  cut(s.memory_mb, b.memory_mb);
  cut(s.whetstone_mips, b.whetstone_mips);
  cut(s.dhrystone_mips, b.dhrystone_mips);
  cut(s.disk_avail_gb, b.disk_avail_gb);
  return s;
}

/// Per-shard generation seed: a SplitMix64 step over (seed, shard) so
/// `pack --generate` shards are independent deterministic streams — the
/// output file is a pure function of (model, date, count, seed, shard
/// size), regardless of thread count.
std::uint64_t shard_seed(std::uint64_t seed, std::uint64_t shard) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (shard + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Peeks the header row to tell a trace CSV from a population CSV.
enum class CsvKind { kTrace, kPopulation, kUnknown };
CsvKind detect_csv_kind(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open csv: " + path);
  util::CsvReader reader(in);
  util::CsvRow row;
  if (!reader.read_row(row)) return CsvKind::kUnknown;
  if (row == trace::csv_header()) return CsvKind::kTrace;
  if (row == kPopulationCsvHeader) return CsvKind::kPopulation;
  return CsvKind::kUnknown;
}

void print_read_report(std::ostream& out, const store::SnapshotReader& reader,
                       const store::ReadReport& report) {
  out << "blocks: " << report.blocks_loaded << '/' << report.blocks_expected
      << " intact, footer "
      << (report.footer_intact ? "intact" : "lost (forward scan used)")
      << '\n';
  for (const store::LostBlock& lost : report.lost) {
    const auto& schema = reader.schema();
    const std::string name = lost.column < schema.size()
                                 ? schema[lost.column].name
                                 : "#" + std::to_string(lost.column);
    out << "lost block: column " << name << ", shard " << lost.shard << " ("
        << lost.rows << " rows): " << to_string(lost.reason) << '\n';
  }
  if (report.rows_lost > 0) {
    out << "rows lost (block-level): " << report.rows_lost << '\n';
  }
  if (report.tail_bytes_unscanned > 0) {
    out << "tail bytes unscanned: " << report.tail_bytes_unscanned << '\n';
  }
}

}  // namespace

int cmd_pack(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  bool generate = false;
  std::uint64_t shard = 0;
  std::uint64_t seed = 0x7e57ab1e;
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    if (arg == "--generate") {
      generate = true;
    } else if (arg.starts_with("--shard=")) {
      // parse_count (not parse_u64): --shard=0 used to silently mean
      // "auto"; an explicit zero or negative row count is now rejected.
      shard = parse_count(arg.substr(8), "--shard");
    } else if (arg.starts_with("--seed=")) {
      seed = parse_u64(arg.substr(7), "--seed");
    } else if (arg.starts_with("--")) {
      err << "pack: unknown flag: '" << arg << "'\n";
      return kUsage;
    } else {
      positional.push_back(arg);
    }
  }

  if (generate) {
    if (positional.size() != 4) {
      err << "pack: expected --generate <model.txt> <YYYY-MM-DD> <count> "
             "<out.snap> [--shard=N] [--seed=N]\n";
      return kUsage;
    }
    const core::ModelParams params = load_model(positional[0]);
    const util::ModelDate date = util::ModelDate::parse(positional[1]);
    const std::uint64_t count = parse_count(positional[2], "count");
    const std::string& out_path = positional[3];
    if (shard == 0) shard = 1u << 20;  // 1 Mi hosts/shard bounds RSS
    const core::HostGenerator generator(params);

    store::SnapshotWriter writer(out_path, store::kPopulationKind,
                                 store::population_schema());
    std::uint64_t written = 0;
    for (std::uint64_t s = 0; written < count; ++s) {
      const std::uint64_t n = std::min<std::uint64_t>(shard, count - written);
      const core::GeneratedHostBatch batch = generator.generate_batch_parallel(
          date, static_cast<std::size_t>(n), shard_seed(seed, s));
      store::append_population_shard(writer, batch);
      written += n;
    }
    writer.finish({{"source", "generated"},
                   {"model", positional[0]},
                   {"date", date.to_string()},
                   {"seed", std::to_string(seed)},
                   {"shard_rows", std::to_string(shard)}});
    out << "packed " << writer.rows_written() << " generated hosts in "
        << writer.shards_written() << " shard(s) -> " << out_path << '\n';
    print_digests(out, writer.schema(), writer.column_digests());
    return kOk;
  }

  if (positional.size() != 2) {
    err << "pack: expected <in.csv> <out.snap> [--shard=N], or --generate "
           "<model.txt> <YYYY-MM-DD> <count> <out.snap>\n";
    return kUsage;
  }
  const std::string& in_path = positional[0];
  const std::string& out_path = positional[1];
  const CsvKind kind = detect_csv_kind(in_path);
  if (kind == CsvKind::kUnknown) {
    err << "pack: " << in_path
        << " is neither a trace nor a population csv (unrecognized "
           "header)\n";
    return kFailure;
  }

  if (kind == CsvKind::kTrace) {
    const trace::TraceStore store = trace::read_csv_file(in_path);
    store::SnapshotWriter writer(out_path, store::kTraceKind,
                                 store::trace_schema());
    const std::span<const trace::HostRecord> hosts = store.hosts();
    const std::uint64_t step = shard == 0 ? std::max<std::uint64_t>(
                                                1, hosts.size())
                                          : shard;
    for (std::uint64_t at = 0; at < hosts.size(); at += step) {
      const std::uint64_t n = std::min<std::uint64_t>(step, hosts.size() - at);
      store::append_trace_shard(
          writer, hosts.subspan(static_cast<std::size_t>(at),
                                static_cast<std::size_t>(n)));
    }
    writer.finish({{"source", in_path}});
    out << "packed " << writer.rows_written() << " trace hosts in "
        << writer.shards_written() << " shard(s) -> " << out_path << '\n';
    print_digests(out, writer.schema(), writer.column_digests());
  } else {
    const core::GeneratedHostBatch batch = read_population_csv(in_path);
    store::SnapshotWriter writer(out_path, store::kPopulationKind,
                                 store::population_schema());
    const std::uint64_t step =
        shard == 0 ? std::max<std::uint64_t>(1, batch.size()) : shard;
    for (std::uint64_t at = 0; at < batch.size(); at += step) {
      const std::uint64_t n = std::min<std::uint64_t>(step, batch.size() - at);
      store::append_population_shard(
          writer, population_slice(batch, static_cast<std::size_t>(at),
                                   static_cast<std::size_t>(n)));
    }
    writer.finish({{"source", in_path}});
    out << "packed " << writer.rows_written() << " population hosts in "
        << writer.shards_written() << " shard(s) -> " << out_path << '\n';
    print_digests(out, writer.schema(), writer.column_digests());
  }
  return kOk;
}

int cmd_unpack(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  bool digest_only = false;
  bool recover = false;
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    if (arg == "--digest-only") {
      digest_only = true;
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg.starts_with("--")) {
      err << "unpack: unknown flag: '" << arg << "'\n";
      return kUsage;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty() || positional.size() > 2 ||
      (digest_only && positional.size() != 1)) {
    err << "unpack: expected <in.snap> [out.csv] [--digest-only] "
           "[--recover]\n";
    return kUsage;
  }
  const std::string& in_path = positional[0];

  store::SnapshotReader reader(in_path);
  out << "kind: " << reader.kind() << '\n';

  if (digest_only) {
    // Checksum walk without materializing columns — the bounded-RSS
    // bit-identity check against pack's digest lines.
    const store::SnapshotReader::VerifyResult v = reader.verify();
    out << "rows: "
        << (reader.footer_intact() ? std::to_string(reader.rows())
                                   : std::string("unknown (footer lost)"))
        << '\n';
    print_read_report(out, reader, v.report);
    print_digests(out, reader.schema(), v.column_digests, &v.column_intact);
    return v.report.complete ? kOk : kFailure;
  }

  store::Snapshot snapshot;
  store::ReadReport report;
  if (recover) {
    snapshot = reader.read_recovering(report);
    print_read_report(out, reader, report);
  } else {
    snapshot = reader.read_all();
    report.blocks_expected = report.blocks_loaded = 0;
  }
  out << "rows: " << snapshot.rows << '\n';

  // Digests over what was actually materialized (zero-filled holes
  // digest as zero-filled — the report above itemizes them).
  {
    std::vector<std::uint32_t> digests(snapshot.columns.size(), 0);
    for (std::size_t i = 0; i < snapshot.columns.size(); ++i) {
      digests[i] = util::crc32c(snapshot.columns[i].data.data(),
                                snapshot.columns[i].data.size());
    }
    print_digests(out, reader.schema(), digests);
  }

  if (positional.size() == 2) {
    const std::string& csv_path = positional[1];
    if (snapshot.kind == store::kTraceKind) {
      trace::write_csv_file(store::unpack_trace(snapshot), csv_path);
    } else if (snapshot.kind == store::kPopulationKind) {
      const core::GeneratedHostBatch batch =
          store::unpack_population(snapshot);
      std::ofstream csv(csv_path);
      if (!csv) {
        throw std::runtime_error("cannot write population csv: " + csv_path);
      }
      util::CsvWriter writer(csv);
      writer.write_row(kPopulationCsvHeader);
      write_population_rows(batch, writer);
    } else {
      err << "unpack: unknown snapshot kind '" << snapshot.kind << "'\n";
      return kFailure;
    }
    out << "unpacked " << snapshot.rows << " rows -> " << csv_path << '\n';
  }
  return recover && !report.complete ? kFailure : kOk;
}

int cmd_verify(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  bool digests = false;
  std::vector<std::string> positional;
  for (const std::string& arg : args) {
    if (arg == "--digests") {
      digests = true;
    } else if (arg.starts_with("--")) {
      err << "verify: unknown flag: '" << arg << "'\n";
      return kUsage;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 1) {
    err << "verify: expected <in.snap> [--digests]\n";
    return kUsage;
  }
  store::SnapshotReader reader(positional[0]);
  const store::SnapshotReader::VerifyResult v = reader.verify();
  out << "kind: " << reader.kind() << '\n';
  if (reader.footer_intact()) {
    out << "rows: " << reader.rows() << " in " << reader.shard_count()
        << " shard(s)\n";
  } else {
    out << "rows: unknown (footer lost)\n";
  }
  print_read_report(out, reader, v.report);
  if (digests) {
    print_digests(out, reader.schema(), v.column_digests, &v.column_intact);
  }
  if (v.report.complete) {
    out << "verify: OK\n";
    return kOk;
  }
  err << "verify: DAMAGED (" << v.report.lost.size() << " lost block(s), "
      << v.report.rows_lost << " rows lost)\n";
  return kFailure;
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    err << usage_text();
    return kUsage;
  }
  const std::string& command = args.front();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (command == "synth") return cmd_synth(rest, out, err);
    if (command == "collect") return cmd_collect(rest, out, err);
    if (command == "fit") return cmd_fit(rest, out, err);
    if (command == "generate") return cmd_generate(rest, out, err);
    if (command == "predict") return cmd_predict(rest, out, err);
    if (command == "validate") return cmd_validate(rest, out, err);
    if (command == "sweep") return cmd_sweep(rest, out, err);
    if (command == "serve") return cmd_serve(rest, out, err);
    if (command == "backends") return cmd_backends(rest, out, err);
    if (command == "pack") return cmd_pack(rest, out, err);
    if (command == "unpack") return cmd_unpack(rest, out, err);
    if (command == "verify") return cmd_verify(rest, out, err);
  } catch (const std::exception& e) {
    err << command << ": " << e.what() << '\n';
    return kFailure;
  }
  err << "unknown command '" << command << "'\n" << usage_text();
  return kUsage;
}

}  // namespace resmodel::cli
